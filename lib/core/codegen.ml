(* Interprocedural code generation (paper Section 5, Figures 9/11/13/17).

   Procedures are compiled exactly once, in reverse topological order over
   the augmented call graph.  Each compilation consumes the exports of its
   callees (computation-partition constraints, delayed communication,
   delayed remapping) and produces its own export record for callers.

   Two strategies share this module: [Interproc] (full delayed
   instantiation) and [Immediate] (the paper's Figure 12 baseline, where
   guards, communication and remapping are instantiated inside each
   procedure).  Statements outside the recognized patterns fall back to
   run-time resolution locally, which is always sound. *)

open Fd_support
open Fd_frontend
open Fd_analysis
open Fd_callgraph
open Fd_machine

module SS = Set.Make (String)
module SM = Map.Make (String)

let int_e n = Ast.Int_const n
let myp = Fit.myp

(* --- Program-level state ---------------------------------------------- *)

type state = {
  opts : Options.t;
  sink : Diag.sink;  (* per-run diagnostic sink for codegen warnings *)
  acg : Acg.t;
  rd : Reaching_decomps.t;
  effects : Side_effects.t;
  mutable counter : int;  (* fresh tags / sites / temporaries *)
  exports : (string, Exports.t) Hashtbl.t;
  mutable remap_stats : (string * Dynamic_decomp.opt_stats) list;
  mutable partition_log : (string * string) list;
      (* (procedure, human-readable loop-partition decision), in
         compilation order *)
}

let fresh st =
  st.counter <- st.counter + 1;
  st.counter

let export_of st name =
  match Hashtbl.find_opt st.exports name with
  | Some e -> e
  | None -> Exports.empty name

(* --- Per-procedure context --------------------------------------------- *)

type proc_ctx = {
  st : state;
  cu : Sema.checked_unit;
  pname : string;
  symtab : Symtab.t;
  formals : string list;
  refs : Sections.ref_info list;
  override : Decomp.t SM.t;  (* formals whose Before-remap was exported *)
  (* analysis results filled by pre-passes *)
  mutable partitions : (int * partition) list;      (* loop sid -> decision *)
  mutable fallbacks : int list;                     (* stmt sids compiled via run-time resolution *)
  mutable placements : (int * request) list;        (* emit request before stmt sid *)
  mutable pending_out : Exports.pending list;       (* delayed to callers *)
  mutable proc_constraint : Exports.constraint_;
  mutable mod_scalars : SS.t;
}

and partition =
  | Unpart
  | Part_concrete of { sets : Iset.t array; p_guard_info : guard_info }
  | Part_symbolic of { layout : Layout.t; dim : int; shift : int }
      (* loop bounds are run-time expressions; the loop distributes via
         symbolic block clipping or cyclic alignment *)

and guard_info = { g_array : string; g_dim : int; g_shift : int; g_layout : Layout.t }

and request =
  | Rq_shift of {
      rs_array : string;
      rs_layout : Layout.t;
      rs_dim : int;
      rs_need : Iset.t array;
      rs_other : Comm.other_dim list;
    }
  | Rq_bcast of {
      rb_array : string;
      rb_layout : Layout.t;
      rb_dim : int;
      rb_index : Ast.expr;
      rb_other : Comm.other_dim list;
    }

(* --- Environment helpers ----------------------------------------------- *)

let is_pseudo_sid sid = sid >= 1_000_000

let decomp_of ctx sid name : Decomp.t =
  match SM.find_opt name ctx.override with
  | Some d -> d
  | None -> (
    let rank = Symtab.rank ctx.symtab name in
    if is_pseudo_sid sid then Decomp.replicated rank
    else
      match Reaching_decomps.unique_at ctx.st.rd ctx.pname sid name with
      | Some d -> d
      | None -> Decomp.replicated rank)

let bounds_of ctx name : (int * int) list =
  match Symtab.array_info ctx.symtab name with
  | Some info -> info.Symtab.dims
  | None -> Diag.error "array %s not declared in %s" name ctx.pname

(* Distributed dimension and layout of [name] at [sid]; None if replicated. *)
let dist_info ctx sid name : (int * Layout.t) option =
  if not (Symtab.is_array ctx.symtab name) then None
  else
    let d = decomp_of ctx sid name in
    match Decomp.dist_dim d with
    | None -> None
    | Some (dim, _) ->
      let layout =
        Decomp.layout_of d ~bounds:(bounds_of ctx name) ~nprocs:ctx.st.opts.Options.nprocs
      in
      Some (dim, layout)

(* Affine form over exportable scalars only (plus constants): formal
   scalars translate through bindings, COMMON scalars by identity. *)
let formal_affine ctx (e : Ast.expr) : Affine.t option =
  match Affine.of_expr ctx.symtab e with
  | Some a
    when List.for_all
           (fun v ->
             (List.mem v ctx.formals || Symtab.is_common ctx.symtab v)
             &&
             match Symtab.find ctx.symtab v with
             | Some (Symtab.Scalar _) -> true
             | _ -> false)
           (Affine.vars a) ->
    Some a
  | _ -> None

let expr_equal a b =
  String.equal (Ast_printer.expr_to_string a) (Ast_printer.expr_to_string b)

(* Affine over names -> expression substituting actuals for formals. *)
let subst_affine (bindings : Ast.expr SM.t) (a : Affine.t) : Ast.expr option =
  let ok = ref true in
  let terms =
    List.map
      (fun v ->
        match SM.find_opt v bindings with
        | Some e -> (Affine.coeff_of v a, e)
        | None ->
          ok := false;
          (0, int_e 0))
      (Affine.vars a)
  in
  if not !ok then None
  else begin
    let base = int_e (Affine.constant a) in
    let add acc (c, e) =
      if c = 0 then acc
      else
        let t = if c = 1 then e else Ast.Bin (Ast.Mul, int_e c, e) in
        match acc with
        | Ast.Int_const 0 -> t
        | _ -> Ast.Bin (Ast.Add, acc, t)
    in
    Some (List.fold_left add base terms)
  end

(* --- Write classification ---------------------------------------------- *)

type wclass =
  | W_replicated
  | W_by_loop of { wl_lsid : int; wl_array : string; wl_dim : int; wl_shift : int;
                   wl_layout : Layout.t; wl_index : Ast.expr }
  | W_owner of { wo_array : string; wo_dim : int; wo_index : Ast.expr;
                 wo_layout : Layout.t }
  | W_fallback

(* Classify the store of an assignment given the enclosing loops. *)
let classify_store ctx (loops : Sections.loop_ctx list) sid (lhs : Ast.expr) : wclass =
  match lhs with
  | Ast.Var _ -> W_replicated
  | Ast.Ref (name, subs) -> (
    match dist_info ctx sid name with
    | None -> W_replicated
    | Some (dim, layout) -> (
      let sub = List.nth subs dim in
      match Affine.of_expr ctx.symtab sub with
      | None -> W_fallback
      | Some a -> (
        let loop_vars =
          List.filter (fun l -> Affine.coeff_of l.Sections.lvar a <> 0) loops
        in
        match loop_vars with
        | [] -> W_owner { wo_array = name; wo_dim = dim; wo_index = sub; wo_layout = layout }
        | [ l ] ->
          let c = Affine.coeff_of l.Sections.lvar a in
          let rest = Affine.drop_var l.Sections.lvar a in
          if c = 1 && Affine.is_const rest then
            W_by_loop
              { wl_lsid = l.Sections.lsid; wl_array = name; wl_dim = dim;
                wl_shift = Affine.constant rest; wl_layout = layout; wl_index = sub }
          else W_fallback
        | _ -> W_fallback)))
  | _ -> W_fallback

(* Classify a call through its callee's exported constraint. *)
let classify_call ctx (loops : Sections.loop_ctx list) sid callee (actuals : Ast.expr list)
    : wclass =
  let ex = export_of ctx.st callee in
  match ex.Exports.ex_constraint with
  | Exports.C_none -> W_replicated
  | Exports.C_owner { co_array; co_dim; co_index } -> (
    let callee_cu = (Acg.proc ctx.st.acg callee).Acg.cu in
    let callee_formals = callee_cu.Sema.unit_.Ast.formals in
    let bindings =
      List.fold_left2
        (fun acc f a -> SM.add f a acc)
        SM.empty callee_formals actuals
    in
    (* COMMON names translate by identity *)
    let bindings =
      List.fold_left
        (fun acc (name, _) ->
          if SM.mem name acc then acc else SM.add name (Ast.Var name) acc)
        bindings
        (Symtab.commons callee_cu.Sema.symtab)
    in
    match SM.find_opt co_array bindings with
    | Some (Ast.Var actual_array) when Symtab.is_array ctx.symtab actual_array -> (
      match dist_info ctx sid actual_array with
      | None ->
        (* the callee was compiled expecting a distribution; cloning
           guarantees consistency, so this means replicated: run everywhere *)
        W_replicated
      | Some (dim, layout) -> (
        if dim <> co_dim then W_fallback
        else
          match subst_affine (SM.map (fun e -> e) bindings) co_index with
          | None -> W_fallback
          | Some index_expr -> (
            (* affine in an enclosing loop var? *)
            match Affine.of_expr ctx.symtab index_expr with
            | Some a -> (
              let lvs =
                List.filter (fun l -> Affine.coeff_of l.Sections.lvar a <> 0) loops
              in
              match lvs with
              | [ l ]
                when Affine.coeff_of l.Sections.lvar a = 1
                     && Affine.is_const (Affine.drop_var l.Sections.lvar a) ->
                W_by_loop
                  { wl_lsid = l.Sections.lsid; wl_array = actual_array; wl_dim = dim;
                    wl_shift = Affine.constant (Affine.drop_var l.Sections.lvar a);
                    wl_layout = layout; wl_index = index_expr }
              | [] ->
                W_owner
                  { wo_array = actual_array; wo_dim = dim; wo_index = index_expr;
                    wo_layout = layout }
              | _ ->
                W_owner
                  { wo_array = actual_array; wo_dim = dim; wo_index = index_expr;
                    wo_layout = layout })
            | None ->
              W_owner
                { wo_array = actual_array; wo_dim = dim; wo_index = index_expr;
                  wo_layout = layout })))
    | _ -> W_fallback)

(* Classification of any statement's computation partition. *)
let classify_stmt ctx loops (s : Ast.stmt) : wclass =
  match s.Ast.kind with
  | Ast.Assign (lhs, _) -> classify_store ctx loops s.Ast.sid lhs
  | Ast.Call (callee, actuals) when Dynamic_decomp.as_remap s = None ->
    classify_call ctx loops s.Ast.sid callee actuals
  | _ -> W_replicated

(* --- Loop partition pre-pass ------------------------------------------- *)

let triplet_of_loop (l : Sections.loop_ctx) : Triplet.t option =
  match (l.Sections.llo, l.Sections.lhi) with
  | Some lo, Some hi -> (
    match (Affine.const_value lo, Affine.const_value hi) with
    | Some a, Some b when l.Sections.lstep >= 1 ->
      Some (Triplet.make ~lo:a ~hi:b ~step:l.Sections.lstep)
    | _ -> None)
  | _ -> None

let owned_of_layout ctx (layout : Layout.t) : Iset.t array =
  Layout.owned layout ~nprocs:ctx.st.opts.Options.nprocs

let loop_ctx_of ctx (s : Ast.stmt) (d : Ast.do_stmt) : Sections.loop_ctx =
  { Sections.lvar = d.Ast.var;
    llo = Affine.of_expr ctx.symtab d.Ast.lo;
    lhi = Affine.of_expr ctx.symtab d.Ast.hi;
    lstep =
      (match d.Ast.step with
      | Some e -> (
        match Option.bind (Affine.of_expr ctx.symtab e) Affine.const_value with
        | Some k -> k
        | None -> 1)
      | None -> 1);
    lsid = s.Ast.sid }

(* Candidate By_loop classifications attributed to loop [lsid] in subtree. *)
let rec collect_candidates ctx loops lsid (stmts : Ast.stmt list) : wclass list =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Do d ->
        let ctxl =
          { Sections.lvar = d.var;
            llo = Affine.of_expr ctx.symtab d.lo;
            lhi = Affine.of_expr ctx.symtab d.hi;
            lstep =
              (match d.step with
              | Some e -> (
                match Option.bind (Affine.of_expr ctx.symtab e) Affine.const_value with
                | Some k -> k
                | None -> 1)
              | None -> 1);
            lsid = s.Ast.sid }
        in
        collect_candidates ctx (loops @ [ ctxl ]) lsid d.body
      | Ast.If i ->
        collect_candidates ctx loops lsid i.then_
        @ collect_candidates ctx loops lsid i.else_
      | _ -> (
        match classify_stmt ctx loops s with
        | W_by_loop b when b.wl_lsid = lsid -> [ W_by_loop b ]
        | _ -> []))
    stmts

(* A loop may only be partitioned when everything effectful in its body
   is partitioned *by it*: a distributed write partitioned by another
   loop, a single-owner write, a replicated-array write, a replicated
   call, a print, a return, or a remap (collective!) all force full
   iteration on every processor.  Scalar assignments are allowed: they
   are either per-iteration temporaries or get their distributed reads
   broadcast before the loop nest. *)
let rec subtree_safe_for_partition ctx loops lsid (stmts : Ast.stmt list) : bool =
  List.for_all
    (fun (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Do d ->
        subtree_safe_for_partition ctx (loops @ [ loop_ctx_of ctx s d ]) lsid d.body
      | Ast.If i ->
        subtree_safe_for_partition ctx loops lsid i.then_
        && subtree_safe_for_partition ctx loops lsid i.else_
      | Ast.Assign (lhs, _) -> (
        match lhs with
        | Ast.Var _ -> true  (* scalar temporary *)
        | Ast.Ref (name, _) -> (
          match classify_store ctx loops s.Ast.sid lhs with
          | W_by_loop b -> b.wl_lsid = lsid
          | W_owner _ | W_fallback -> false
          | W_replicated ->
            (* a replicated array written under a partition would leave
               stale copies on the other processors *)
            not (Symtab.is_array ctx.symtab name))
        | _ -> false)
      | Ast.Call _ when Dynamic_decomp.as_remap s <> None -> false
      | Ast.Call (callee, actuals) -> (
        match classify_call ctx loops s.Ast.sid callee actuals with
        | W_by_loop b -> b.wl_lsid = lsid
        | _ -> false)
      | Ast.Align _ | Ast.Distribute _ -> true
      | Ast.Return | Ast.Print _ -> false)
    stmts

let decide_partition ctx (loops_outer : Sections.loop_ctx list)
    (l : Sections.loop_ctx) (body : Ast.stmt list) : partition =
  let cands = collect_candidates ctx (loops_outer @ [ l ]) l.Sections.lsid body in
  if
    cands <> []
    && not
         (subtree_safe_for_partition ctx (loops_outer @ [ l ]) l.Sections.lsid body)
  then Unpart
  else
  match cands with
  | [] -> Unpart
  | W_by_loop first :: rest ->
    let same =
      List.for_all
        (function
          | W_by_loop b ->
            b.wl_shift = first.wl_shift && Layout.equal b.wl_layout first.wl_layout
            && b.wl_dim = first.wl_dim
          | _ -> false)
        rest
    in
    if not same then Unpart
    else begin
      let owned = owned_of_layout ctx first.wl_layout in
      match triplet_of_loop l with
      | Some range ->
        let sets =
          Array.map
            (fun o -> Iset.inter (Iset.shift (-first.wl_shift) o) (Iset.of_triplet range))
            owned
        in
        Part_concrete
          { sets;
            p_guard_info =
              { g_array = first.wl_array; g_dim = first.wl_dim;
                g_shift = first.wl_shift; g_layout = first.wl_layout } }
      | None ->
        (* run-time loop bounds: symbolic partitioning for block/cyclic,
           unit loop step only *)
        if l.Sections.lstep <> 1 then Unpart
        else (
          match first.wl_layout.Layout.dist with
          | Layout.Block _ | Layout.Cyclic ->
            Part_symbolic
              { layout = first.wl_layout; dim = first.wl_dim; shift = first.wl_shift }
          | Layout.Block_cyclic _ | Layout.Replicated -> Unpart)
    end
  | _ -> Unpart

(* --- Communication pre-pass -------------------------------------------- *)

(* Widen an other-dimension subscript for placement outside the loops in
   [widen_over]; returns the runtime form and (when possible) the
   exportable form. *)
let widen_other_dim ctx (widen_over : Sections.loop_ctx list) (sub : Ast.expr)
    ((dlo, dhi) : int * int) : Comm.other_dim * Exports.odim option =
  match Affine.of_expr ctx.symtab sub with
  | None -> (Comm.Od_full (dlo, dhi), Some (Exports.Oc_full (dlo, dhi)))
  | Some a -> (
    let loop_vars =
      List.filter (fun l -> Affine.coeff_of l.Sections.lvar a <> 0) widen_over
    in
    match loop_vars with
    | [] ->
      let od = Comm.Od_point sub in
      let oc = Option.map (fun fa -> Exports.Oc_formal fa) (formal_affine ctx sub) in
      (od, oc)
    | [ l ] when Affine.coeff_of l.Sections.lvar a = 1 -> (
      (* widen v + c over the loop range *)
      let c = Affine.drop_var l.Sections.lvar a in
      if not (Affine.is_const c) then (Comm.Od_full (dlo, dhi), Some (Exports.Oc_full (dlo, dhi)))
      else
        let k = Affine.constant c in
        match triplet_of_loop l with
        | Some t when Triplet.step t = 1 ->
          ( Comm.Od_range (int_e (Triplet.lo t + k), int_e (Triplet.hi t + k)),
            Some
              (Exports.Oc_range
                 (Affine.const (Triplet.lo t + k), Affine.const (Triplet.hi t + k))) )
        | _ -> (Comm.Od_full (dlo, dhi), Some (Exports.Oc_full (dlo, dhi))))
    | _ -> (Comm.Od_full (dlo, dhi), Some (Exports.Oc_full (dlo, dhi))))

(* The partition decision for a loop sid (after the partition pre-pass). *)
let partition_of ctx lsid =
  match List.assoc_opt lsid ctx.partitions with Some p -> p | None -> Unpart

let mark_fallback ctx sid =
  if not (List.mem sid ctx.fallbacks) then ctx.fallbacks <- sid :: ctx.fallbacks

let add_placement ctx sid rq = ctx.placements <- ctx.placements @ [ (sid, rq) ]

(* Process one distributed read reference for communication.
   [stmt_class] is the classification of the statement containing it. *)
let process_read ctx (r : Sections.ref_info) (stmt_class : wclass)
    ~(outermost_sid : int option) =
  match dist_info ctx r.Sections.sid r.Sections.array with
  | None -> ()
  | Some (dim, layout) -> (
    let sub = List.nth r.Sections.subs dim in
    match sub with
    | None -> mark_fallback ctx r.Sections.sid
    | Some a -> (
      let bounds = bounds_of ctx r.Sections.array in
      let other_bounds = List.filteri (fun i _ -> i <> dim) bounds in
      let loop_vars =
        List.filter (fun l -> Affine.coeff_of l.Sections.lvar a <> 0) r.Sections.loops
      in
      match loop_vars with
      | [ l ]
        when Affine.coeff_of l.Sections.lvar a = 1
             && Affine.is_const (Affine.drop_var l.Sections.lvar a) -> (
        (* shift pattern relative to loop l *)
        let c = Affine.constant (Affine.drop_var l.Sections.lvar a) in
        match partition_of ctx l.Sections.lsid with
        | Part_concrete { sets; p_guard_info } -> (
          if
            (not (Layout.equal p_guard_info.g_layout layout))
            || p_guard_info.g_dim <> dim
          then mark_fallback ctx r.Sections.sid
          else begin
            let need = Array.map (Iset.shift c) sets in
            let owned = owned_of_layout ctx layout in
            let nonlocal =
              Array.exists
                (fun p -> not (Iset.subset need.(p) owned.(p)))
                (Array.init (Array.length need) Fun.id)
            in
            if nonlocal then begin
              (* any loop-carried true dependence forces per-iteration
                 communication: fall back to run-time resolution *)
              match Dependence.deepest_true_dep_level ctx.refs r with
              | Some _ -> mark_fallback ctx r.Sections.sid
              | None -> (
                (* widen other dims over all enclosing loops; place before
                   the outermost loop, or export *)
                let other_subs =
                  List.filteri (fun i _ -> i <> dim) r.Sections.subs
                in
                let widened =
                  List.map2
                    (fun s b ->
                      match s with
                      | None -> let blo, bhi = b in (Comm.Od_full (blo, bhi), Some (Exports.Oc_full (blo, bhi)))
                      | Some sa ->
                        widen_other_dim ctx r.Sections.loops (Affine.to_expr sa) b)
                    other_subs
                    (List.map
                       (fun (lo, hi) -> (lo, hi))
                       other_bounds)
                in
                let ods = List.map fst widened in
                let ocs = List.map snd widened in
                let exportable =
                  ctx.st.opts.Options.strategy = Options.Interproc
                  && ctx.cu.Sema.unit_.Ast.ukind = Ast.Subroutine
                  && (List.mem r.Sections.array ctx.formals
                     || Symtab.is_common ctx.symtab r.Sections.array)
                  && List.for_all Option.is_some ocs
                in
                if exportable then begin
                  (* find the partitioned write's other-dim subscripts for
                     the caller's disjointness test *)
                  let write_other =
                    List.find_map
                      (fun (w : Sections.ref_info) ->
                        if
                          w.Sections.is_write
                          && String.equal w.Sections.array r.Sections.array
                        then
                          let wsubs =
                            List.filteri (fun i _ -> i <> dim) w.Sections.subs
                          in
                          let oc =
                            List.map
                              (fun s ->
                                match s with
                                | Some sa -> (
                                  match formal_affine ctx (Affine.to_expr sa) with
                                  | Some fa -> Some (Exports.Oc_formal fa)
                                  | None -> None)
                                | None -> None)
                              wsubs
                          in
                          if List.for_all Option.is_some oc then
                            Some (List.map Option.get oc)
                          else None
                        else None)
                      ctx.refs
                  in
                  ctx.pending_out <-
                    ctx.pending_out
                    @ [ Exports.P_shift
                          { ps_array = r.Sections.array; ps_dim = dim; ps_need = need;
                            ps_other = List.map Option.get ocs;
                            ps_write_other = write_other } ]
                end
                else
                  match outermost_sid with
                  | Some osid ->
                    add_placement ctx osid
                      (Rq_shift
                         { rs_array = r.Sections.array; rs_layout = layout;
                           rs_dim = dim; rs_need = need; rs_other = ods })
                  | None -> mark_fallback ctx r.Sections.sid)
            end
          end)
        | Part_symbolic _ ->
          (* symbolic partitions support owner-aligned reads only *)
          if c <> 0 then mark_fallback ctx r.Sections.sid
        | Unpart ->
          (* read scans a distributed dimension from replicated code *)
          mark_fallback ctx r.Sections.sid)
      | [] -> (
        (* loop-invariant distributed index: single owner *)
        let index_expr = Affine.to_expr a in
        (* local when the enclosing statement is guarded/partitioned on
           the same owner *)
        let local =
          match stmt_class with
          | W_owner { wo_index; wo_dim; wo_layout; _ } -> (
            (* owner equality is what matters: same layout and the same
               index value (compare affine forms so PARAMETER names and
               folded constants agree) *)
            wo_dim = dim
            && Layout.equal wo_layout layout
            &&
            match Affine.of_expr ctx.symtab wo_index with
            | Some wo_aff -> Affine.equal wo_aff a
            | None -> expr_equal wo_index index_expr)
          | W_by_loop _ -> false
          | _ -> (
            (* inside a C_owner procedure everything runs on one owner *)
            match ctx.proc_constraint with
            | Exports.C_owner { co_index; _ } -> (
              match formal_affine ctx index_expr with
              | Some fa -> Affine.equal fa co_index
              | None -> false)
            | Exports.C_none -> false)
        in
        if local then ()
        else begin
          (* broadcast request *)
          let other_subs = List.filteri (fun i _ -> i <> dim) r.Sections.subs in
          let widened =
            List.map2
              (fun s b ->
                match s with
                | None -> let blo, bhi = b in (Comm.Od_full (blo, bhi), Some (Exports.Oc_full (blo, bhi)))
                | Some sa -> widen_other_dim ctx r.Sections.loops (Affine.to_expr sa) b)
              other_subs other_bounds
          in
          let ods = List.map fst widened in
          let ocs = List.map snd widened in
          let exportable =
            ctx.st.opts.Options.strategy = Options.Interproc
            && ctx.cu.Sema.unit_.Ast.ukind = Ast.Subroutine
            && (List.mem r.Sections.array ctx.formals
               || Symtab.is_common ctx.symtab r.Sections.array)
            && List.for_all Option.is_some ocs
            && formal_affine ctx index_expr <> None
          in
          if exportable then
            ctx.pending_out <-
              ctx.pending_out
              @ [ Exports.P_invariant
                    { pi_array = r.Sections.array; pi_dim = dim;
                      pi_index = Option.get (formal_affine ctx index_expr);
                      pi_other = List.map Option.get ocs } ]
          else begin
            (* place before the outermost enclosing loop in which the
               index is invariant (it is invariant in all local loops
               here since it has no loop vars) *)
            let target =
              match outermost_sid with Some osid -> osid | None -> r.Sections.sid
            in
            add_placement ctx target
              (Rq_bcast
                 { rb_array = r.Sections.array; rb_layout = layout; rb_dim = dim;
                   rb_index = index_expr; rb_other = ods })
          end
        end)
      | _ -> mark_fallback ctx r.Sections.sid))

(* --- Procedure-level constraint detection ------------------------------ *)

(* Collect every statement's classification (flat). *)
let rec classify_all ctx loops (stmts : Ast.stmt list) : (int * wclass) list =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Do d ->
        let ctxl =
          { Sections.lvar = d.var;
            llo = Affine.of_expr ctx.symtab d.lo;
            lhi = Affine.of_expr ctx.symtab d.hi;
            lstep =
              (match d.step with
              | Some e -> (
                match Option.bind (Affine.of_expr ctx.symtab e) Affine.const_value with
                | Some k -> k
                | None -> 1)
              | None -> 1);
            lsid = s.Ast.sid }
        in
        classify_all ctx (loops @ [ ctxl ]) d.body
      | Ast.If i ->
        classify_all ctx loops i.then_ @ classify_all ctx loops i.else_
      | _ -> [ (s.Ast.sid, classify_stmt ctx loops s) ])
    stmts

(* Detect the whole-procedure owner constraint: every distributed write
   (or, with none, every distributed read) touches a single owner indexed
   by the same formal-affine expression. *)
let detect_constraint ctx (body : Ast.stmt list) : Exports.constraint_ =
  if ctx.pname = (ctx.st.acg).Acg.main then Exports.C_none
  else begin
    let classes = classify_all ctx [] body in
    let has_partition_or_fallback =
      List.exists
        (fun (_, c) -> match c with W_by_loop _ | W_fallback -> true | _ -> false)
        classes
    in
    if has_partition_or_fallback then Exports.C_none
    else begin
      let owners =
        List.filter_map
          (fun (_, c) ->
            match c with
            | W_owner { wo_array; wo_dim; wo_index; _ } -> (
              match formal_affine ctx wo_index with
              | Some fa -> Some (Some (wo_array, wo_dim, fa))
              | None -> Some None)
            | _ -> None)
          classes
      in
      let reads =
        List.filter_map
          (fun (r : Sections.ref_info) ->
            if r.Sections.is_write then None
            else
              match dist_info ctx r.Sections.sid r.Sections.array with
              | None -> None
              | Some (dim, _) -> (
                match List.nth r.Sections.subs dim with
                | None -> Some None
                | Some a ->
                  if
                    List.exists
                      (fun l -> Affine.coeff_of l.Sections.lvar a <> 0)
                      r.Sections.loops
                  then Some None
                  else
                    (match formal_affine ctx (Affine.to_expr a) with
                    | Some fa -> Some (Some (r.Sections.array, dim, fa))
                    | None -> Some None)))
          ctx.refs
      in
      let merge cands =
        match cands with
        | [] -> None
        | Some (a0, d0, i0) :: rest
          when List.for_all
                 (function
                   | Some (a, d, i) ->
                     String.equal a a0 && d = d0 && Affine.equal i i0
                   | None -> false)
                 rest ->
          Some (a0, d0, i0)
        | _ -> None
      in
      match (owners, merge owners) with
      | [], _ -> (
        (* no distributed writes: constrain by the reads, requiring them
           to be uniform (a procedure that must run on the data's owner) *)
        match (reads, merge reads) with
        | [], _ -> Exports.C_none
        | _, Some (a, d, i) ->
          Exports.C_owner { co_array = a; co_dim = d; co_index = i }
        | _, None -> Exports.C_none)
      | _, Some (a, d, i) -> (
        (* writes uniform; reads must be uniform-or-broadcastable *)
        let reads_ok =
          List.for_all
            (fun (r : Sections.ref_info) ->
              if r.Sections.is_write then true
              else
                match dist_info ctx r.Sections.sid r.Sections.array with
                | None -> true
                | Some (dim, _) -> (
                  match List.nth r.Sections.subs dim with
                  | None -> false
                  | Some sa -> (
                    if
                      List.exists
                        (fun l -> Affine.coeff_of l.Sections.lvar sa <> 0)
                        r.Sections.loops
                    then false
                    else
                      match formal_affine ctx (Affine.to_expr sa) with
                      | Some _ -> true
                      | None -> false)))
            ctx.refs
        in
        if reads_ok then Exports.C_owner { co_array = a; co_dim = d; co_index = i }
        else Exports.C_none)
      | _, None -> Exports.C_none
    end
  end

(* --- Dynamic decomposition: analysis and materialization --------------- *)

(* The unique inherited decomposition of formal array [x]. *)
let inherited_decomp ctx (x : string) : Decomp.t =
  let fact = Reaching_decomps.reaching_of ctx.st.rd ctx.pname in
  let rank = Symtab.rank ctx.symtab x in
  match SM.find_opt x fact with
  | Some r -> (
    match (Decomp.Set.elements r.Decomp.decomps, r.Decomp.top) with
    | [ d ], false -> d
    | [], _ -> Decomp.replicated rank
    | _ -> Diag.error "formal %s of %s has multiple inherited decompositions" x ctx.pname)
  | None -> Decomp.replicated rank

(* Distribute statements whose target resolves to a formal array, where
   the distribute precedes any use: eligible for Before/After export. *)
type dyn_info = {
  dyn_override : Decomp.t SM.t;
  dyn_before : (string * Decomp.t) list;
  dyn_after : (string * Decomp.t) list;
  dyn_local_sids : int list;  (* distribute sids to materialize locally *)
}

let flatten_stmts (body : Ast.stmt list) : Ast.stmt list =
  let out = ref [] in
  Ast.iter_stmts (fun s -> out := s :: !out) body;
  List.rev !out

let distribute_targets ctx (s : Ast.stmt) : (string * Decomp.t) list =
  (* arrays whose decomposition changes at this DISTRIBUTE (directly or
     through alignment) *)
  match s.Ast.kind with
  | Ast.Distribute { decomp; dists } ->
    let d = Decomp.of_kinds dists in
    if Symtab.is_decomposition ctx.symtab decomp then begin
      let lr = Reaching_decomps.local_of ctx.st.rd ctx.pname in
      SM.fold
        (fun array (target, subs) acc ->
          if String.equal target decomp then
            (array,
             Decomp.through_align ~array_rank:(Symtab.rank ctx.symtab array) subs d)
            :: acc
          else acc)
        (Reaching_decomps.aligns_of lr) []
    end
    else [ (decomp, d) ]
  | _ -> []

let analyze_dyn ctx (body : Ast.stmt list) : dyn_info =
  let flat = flatten_stmts body in
  let uses_before target_sid x =
    let rec scan = function
      | [] -> false
      | (s : Ast.stmt) :: _ when s.Ast.sid = target_sid -> false
      | s :: rest ->
        let used = ref false in
        Ast.iter_exprs_stmt
          (fun e ->
            Ast.iter_exprs_expr
              (fun e' ->
                match e' with
                | Ast.Ref (a, _) | Ast.Var a -> if String.equal a x then used := true
                | _ -> ())
              e)
          s;
        if !used then true else scan rest
    in
    scan flat
  in
  let interproc = ctx.st.opts.Options.strategy = Options.Interproc in
  let override = ref SM.empty in
  let before = ref [] and after = ref [] and local = ref [] in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Distribute _ ->
        let targets = distribute_targets ctx s in
        let all_exportable =
          interproc
          && ctx.cu.Sema.unit_.Ast.ukind = Ast.Subroutine
          && targets <> []
          && List.for_all
               (fun (x, _) ->
                 (List.mem x ctx.formals || Symtab.is_common ctx.symtab x)
                 && (not (SM.mem x !override))
                 && not (uses_before s.Ast.sid x))
               targets
        in
        if all_exportable then
          List.iter
            (fun (x, d) ->
              override := SM.add x d !override;
              before := (x, d) :: !before;
              let inh = inherited_decomp ctx x in
              if not (Decomp.equal inh d) then after := (x, inh) :: !after)
            targets
        else local := s.Ast.sid :: !local
      | _ -> ())
    flat;
  { dyn_override = !override;
    dyn_before = List.rev !before;
    dyn_after = List.rev !after;
    dyn_local_sids = List.rev !local }

(* Instrument the body with remap$ pseudo-statements. *)
let materialize_remaps ctx (dyn : dyn_info) (body : Ast.stmt list) : Ast.stmt list =
  let interproc = ctx.st.opts.Options.strategy = Options.Interproc in
  let rec walk stmts =
    List.concat_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Do d -> [ { s with kind = Ast.Do { d with body = walk d.body } } ]
        | Ast.If i ->
          [ { s with kind = Ast.If { i with then_ = walk i.then_; else_ = walk i.else_ } } ]
        | Ast.Distribute _ ->
          if List.mem s.Ast.sid dyn.dyn_local_sids then
            s
            :: List.map
                 (fun (x, d) ->
                   Dynamic_decomp.remap_stmt
                     { Dynamic_decomp.rm_array = x; rm_decomp = d; rm_move = true })
                 (distribute_targets ctx s)
          else [ s ]
        | Ast.Call (callee, actuals) when interproc && Dynamic_decomp.as_remap s = None
          -> (
          match Acg.proc ctx.st.acg callee with
          | exception _ -> [ s ]
          | callee_proc ->
            let ex = export_of ctx.st callee in
            let callee_formals = callee_proc.Acg.cu.Sema.unit_.Ast.formals in
            let actual_of f =
              match List.assoc_opt f (List.combine callee_formals actuals) with
              | Some (Ast.Var v) when Symtab.is_array ctx.symtab v -> Some v
              | Some _ -> None
              | None ->
                (* COMMON arrays translate by identity *)
                if
                  Symtab.is_common callee_proc.Acg.cu.Sema.symtab f
                  && Symtab.is_array ctx.symtab f
                then Some f
                else None
            in
            let translate lst =
              List.filter_map
                (fun (f, d) ->
                  Option.map
                    (fun v ->
                      Dynamic_decomp.remap_stmt
                        { Dynamic_decomp.rm_array = v; rm_decomp = d; rm_move = true })
                    (actual_of f))
                lst
            in
            translate ex.Exports.ex_before @ [ s ] @ translate ex.Exports.ex_after)
        | _ -> [ s ])
      stmts
  in
  let instrumented = walk body in
  (* non-interprocedural strategies restore inherited decompositions of
     formals at procedure exit *)
  if (not interproc) && dyn.dyn_local_sids <> [] then begin
    let inheriting x =
      List.mem x ctx.formals || Symtab.is_common ctx.symtab x
    in
    let formals_distributed =
      List.concat_map
        (fun (s : Ast.stmt) ->
          if List.mem s.Ast.sid dyn.dyn_local_sids then
            List.filter (fun (x, _) -> inheriting x) (distribute_targets ctx s)
          else [])
        (flatten_stmts body)
      |> List.map fst
      |> Listx.dedup ~equal:String.equal
    in
    let restores () =
      List.map
        (fun x ->
          Dynamic_decomp.remap_stmt
            { Dynamic_decomp.rm_array = x; rm_decomp = inherited_decomp ctx x;
              rm_move = true })
        formals_distributed
    in
    (* restore the inherited decompositions at every exit: before each
       RETURN and at the end of the body *)
    let rec with_restores stmts =
      List.concat_map
        (fun (s : Ast.stmt) ->
          match s.Ast.kind with
          | Ast.Return -> restores () @ [ s ]
          | Ast.Do d ->
            [ { s with kind = Ast.Do { d with body = with_restores d.body } } ]
          | Ast.If i ->
            [ { s with
                kind =
                  Ast.If
                    { i with
                      then_ = with_restores i.then_;
                      else_ = with_restores i.else_ } } ]
          | _ -> [ s ])
        stmts
    in
    with_restores instrumented @ restores ()
  end
  else instrumented

(* --- Pass drivers ------------------------------------------------------- *)

let partition_pass ctx (body : Ast.stmt list) =
  ctx.partitions <- [];
  let rec walk loops stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Do d ->
          let l = loop_ctx_of ctx s d in
          let decision = decide_partition ctx loops l d.body in
          (* validate concrete partitions are emittable *)
          let decision =
            match decision with
            | Part_concrete { sets; _ } when Fit.fit_procset_opt sets = None -> Unpart
            | d -> d
          in
          (let describe =
             match decision with
             | Unpart -> "replicated (full bounds on every processor)"
             | Part_concrete { sets; p_guard_info } ->
               Fmt.str "partitioned on %s dim %d: %a" p_guard_info.g_array
                 (p_guard_info.g_dim + 1) Fd_analysis.Procset.pp sets
             | Part_symbolic { layout; dim; shift } ->
               Fmt.str "partitioned symbolically on dim %d (%a, shift %d)" (dim + 1)
                 Layout.pp layout shift
           in
           ctx.st.partition_log <-
             ctx.st.partition_log
             @ [ (ctx.pname, Fmt.str "do %s (s%d): %s" d.var s.Ast.sid describe) ]);
          ctx.partitions <- (s.Ast.sid, decision) :: ctx.partitions;
          walk (loops @ [ l ]) d.body
        | Ast.If i ->
          walk loops i.then_;
          walk loops i.else_
        | _ -> ())
      stmts
  in
  walk [] body

(* Does hoisting a read of [array] (dist dim [dim], index [idx_aff] over
   proc-local names) out of partitioned loop [l] interfere with writes
   performed inside the loop? *)
let hoist_interferes (l : Sections.loop_ctx) (lp : partition) ~array ~dim
    ~(idx_aff : Affine.t option) (loop_body_writes : (string * int option) list) : bool =
  (* loop_body_writes: (array, Some shift) for partition candidates,
     (array, None) for arbitrary writes *)
  List.exists
    (fun (warr, wshift) ->
      if not (String.equal warr array) then false
      else
        match (lp, wshift, idx_aff, l.Sections.llo, l.Sections.lhi) with
        | Part_concrete _, Some c, Some idx, Some lo, _
        | Part_symbolic _, Some c, Some idx, Some lo, _ -> (
          (* candidate writes touch dist indices [lo+c .. hi+c] of [dim];
             safe when idx provably below lo+c (or above hi+c) *)
          ignore dim;
          let below = Affine.sub (Affine.add lo (Affine.const c)) idx in
          match Affine.const_value below with
          | Some k when k >= 1 -> false
          | _ -> (
            match l.Sections.lhi with
            | Some hi -> (
              let above = Affine.sub idx (Affine.add hi (Affine.const c)) in
              match Affine.const_value above with
              | Some k when k >= 1 -> false
              | _ -> true)
            | None -> true))
        | _ -> true)
    loop_body_writes

(* Writes inside a loop subtree: direct stores plus arrays modified by
   called procedures (candidates annotated with their shift). *)
let subtree_writes ctx ?(loops0 = []) (stmts : Ast.stmt list) : (string * int option) list =
  let out = ref [] in
  let rec walk loops ss =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Do d -> walk (loops @ [ loop_ctx_of ctx s d ]) d.body
        | Ast.If i ->
          walk loops i.then_;
          walk loops i.else_
        | Ast.Assign (lhs, _) -> (
          match lhs with
          | Ast.Ref (name, _) -> (
            match classify_store ctx loops s.Ast.sid lhs with
            | W_by_loop b -> out := (name, Some b.wl_shift) :: !out
            | _ -> out := (name, None) :: !out)
          | _ -> ())
        | Ast.Call (callee, actuals) when Dynamic_decomp.as_remap s = None -> (
          match classify_call ctx loops s.Ast.sid callee actuals with
          | W_by_loop b ->
            (* the call writes its constraint array at the loop index *)
            out := (b.wl_array, Some b.wl_shift) :: !out;
            (* plus anything else it modifies *)
            let gmod = Side_effects.gmod ctx.st.effects callee in
            let callee_formals =
              (Acg.proc ctx.st.acg callee).Acg.cu.Sema.unit_.Ast.formals
            in
            List.iter2
              (fun f a ->
                match a with
                | Ast.Var v
                  when Side_effects.S.mem f gmod
                       && Symtab.is_array ctx.symtab v
                       && not (String.equal v b.wl_array) ->
                  out := (v, None) :: !out
                | _ -> ())
              callee_formals actuals
          | _ ->
            let gmod = Side_effects.gmod ctx.st.effects callee in
            let callee_formals =
              try (Acg.proc ctx.st.acg callee).Acg.cu.Sema.unit_.Ast.formals
              with _ -> []
            in
            if List.length callee_formals = List.length actuals then
              List.iter2
                (fun f a ->
                  match a with
                  | Ast.Var v
                    when Side_effects.S.mem f gmod && Symtab.is_array ctx.symtab v ->
                    out := (v, None) :: !out
                  | _ -> ())
                callee_formals actuals;
            (* modified COMMON arrays pass through by identity *)
            Side_effects.S.iter
              (fun n ->
                if Symtab.is_common ctx.symtab n && Symtab.is_array ctx.symtab n then
                  out := (n, None) :: !out)
              gmod)
        | _ -> ())
      ss
  in
  walk loops0 stmts;
  !out

(* Placement for a broadcast-style request: hoist outward from the
   reference while safe; returns the sid to place before. *)
let bcast_placement ctx (enclosing : (Ast.stmt * Ast.do_stmt) list) (* innermost last *)
    ~array ~dim ~(idx_aff : Affine.t option) ~(stmt_sid : int) : int =
  let rec climb placed = function
    | [] -> placed
    | (s, (d : Ast.do_stmt)) :: outer ->
      (* [s] is the innermost not-yet-crossed loop; crossing it is safe if
         its body's writes don't interfere *)
      let l = loop_ctx_of ctx s d in
      let lp = partition_of ctx s.Ast.sid in
      let writes = subtree_writes ctx ~loops0:[ l ] d.Ast.body in
      if hoist_interferes l lp ~array ~dim ~idx_aff writes then placed
      else climb s.Ast.sid outer
  in
  climb stmt_sid (List.rev enclosing)

(* --- Communication pass -------------------------------------------------- *)

(* Instantiate or re-delay a callee's pending communications at a call. *)
let process_call_pendings ctx (loops : (Ast.stmt * Ast.do_stmt) list) sid callee actuals =
  let ex = export_of ctx.st callee in
  if ex.Exports.ex_comms = [] then ()
  else begin
    let callee_cu = (Acg.proc ctx.st.acg callee).Acg.cu in
    let callee_formals = callee_cu.Sema.unit_.Ast.formals in
    let bindings =
      List.fold_left2 (fun acc f a -> SM.add f a acc) SM.empty callee_formals actuals
    in
    let bindings =
      List.fold_left
        (fun acc (name, _) ->
          if SM.mem name acc then acc else SM.add name (Ast.Var name) acc)
        bindings
        (Symtab.commons callee_cu.Sema.symtab)
    in
    let actual_array f =
      match SM.find_opt f bindings with
      | Some (Ast.Var v) when Symtab.is_array ctx.symtab v -> Some v
      | _ -> None
    in
    let subst_odim (o : Exports.odim) : Comm.other_dim option =
      match o with
      | Exports.Oc_const c -> Some (Comm.Od_point (int_e c))
      | Exports.Oc_full (lo, hi) -> Some (Comm.Od_full (lo, hi))
      | Exports.Oc_formal a ->
        Option.map (fun e -> Comm.Od_point e) (subst_affine bindings a)
      | Exports.Oc_range (a, b) -> (
        match (subst_affine bindings a, subst_affine bindings b) with
        | Some ea, Some eb -> Some (Comm.Od_range (ea, eb))
        | _ -> None)
    in
    List.iter
      (fun (p : Exports.pending) ->
        match p with
        | Exports.P_invariant { pi_array; pi_dim; pi_index; pi_other } -> (
          match actual_array pi_array with
          | None -> mark_fallback ctx sid
          | Some arr -> (
            match dist_info ctx sid arr with
            | None -> ()  (* replicated at the call: data available everywhere *)
            | Some (dim, layout) -> (
              if dim <> pi_dim then mark_fallback ctx sid
              else
                match subst_affine bindings pi_index with
                | None -> mark_fallback ctx sid
                | Some index_expr -> (
                  let others = List.map subst_odim pi_other in
                  if List.exists Option.is_none others then mark_fallback ctx sid
                  else begin
                    let idx_aff = Affine.of_expr ctx.symtab index_expr in
                    let target =
                      bcast_placement ctx loops ~array:arr ~dim ~idx_aff ~stmt_sid:sid
                    in
                    add_placement ctx target
                      (Rq_bcast
                         { rb_array = arr; rb_layout = layout; rb_dim = dim;
                           rb_index = index_expr;
                           rb_other = List.map Option.get others })
                  end))))
        | Exports.P_shift { ps_array; ps_dim; ps_need; ps_other; ps_write_other } -> (
          match actual_array ps_array with
          | None -> mark_fallback ctx sid
          | Some arr -> (
            match dist_info ctx sid arr with
            | None -> ()
            | Some (dim, layout) ->
              if dim <> ps_dim then mark_fallback ctx sid
              else begin
                (* try to hoist out of the innermost enclosing partitioned
                   loop when the callee's read and write sections are
                   indexed identically by that loop in some dimension *)
                let callee_sig =
                  callee ^ "|"
                  ^ String.concat ","
                      (List.map Ast_printer.expr_to_string actuals)
                in
                (* writes to [arr] in a loop's body are harmless for
                   hoisting only when they all come from call sites with
                   this same callee and actuals (their sections are then
                   indexed identically by the loop variable) *)
                let rec only_same_call_writes stmts =
                  List.for_all
                    (fun (t : Ast.stmt) ->
                      match t.Ast.kind with
                      | Ast.Do td -> only_same_call_writes td.Ast.body
                      | Ast.If ti ->
                        only_same_call_writes ti.Ast.then_
                        && only_same_call_writes ti.Ast.else_
                      | Ast.Assign (Ast.Ref (n, _), _) -> not (String.equal n arr)
                      | Ast.Assign (_, _) -> true
                      | Ast.Call _ when Dynamic_decomp.as_remap t <> None ->
                        not (Dynamic_decomp.is_remap_of arr t)
                      | Ast.Call (tc, targs) ->
                        let sig_t =
                          tc ^ "|"
                          ^ String.concat ","
                              (List.map Ast_printer.expr_to_string targs)
                        in
                        String.equal sig_t callee_sig
                        ||
                        (* the call must not modify [arr] *)
                        (let gmod = Side_effects.gmod ctx.st.effects tc in
                         let tformals =
                           try (Acg.proc ctx.st.acg tc).Acg.cu.Sema.unit_.Ast.formals
                           with _ -> []
                         in
                         List.length tformals = List.length targs
                         && List.for_all2
                              (fun f a ->
                                match a with
                                | Ast.Var v when String.equal v arr ->
                                  not (Side_effects.S.mem f gmod)
                                | _ -> true)
                              tformals targs)
                      | _ -> true)
                    stmts
                in
                let hoisted =
                  match List.rev loops with
                  | (ls, ld) :: _ -> (
                    let lvar = ld.Ast.var in
                    match (only_same_call_writes ld.Ast.body, ps_write_other) with
                    | true, Some wother
                      when List.exists2
                             (fun (ro : Exports.odim) (wo : Exports.odim) ->
                               match (ro, wo) with
                               | Exports.Oc_formal ra, Exports.Oc_formal wa -> (
                                 Affine.equal ra wa
                                 &&
                                 match subst_affine bindings ra with
                                 | Some (Ast.Var v) -> String.equal v lvar
                                 | _ -> false)
                               | _ -> false)
                             ps_other wother ->
                      (* widen the loop-indexed dimensions over the loop
                         range and place before the loop *)
                      let widened =
                        List.map
                          (fun (ro : Exports.odim) ->
                            match ro with
                            | Exports.Oc_formal ra -> (
                              match subst_affine bindings ra with
                              | Some (Ast.Var v) when String.equal v lvar ->
                                Some (Comm.Od_range (ld.Ast.lo, ld.Ast.hi))
                              | Some e -> Some (Comm.Od_point e)
                              | None -> None)
                            | o -> subst_odim o)
                          ps_other
                      in
                      if List.for_all Option.is_some widened then
                        Some (ls.Ast.sid, List.map Option.get widened)
                      else None
                    | _ -> None)
                  | [] -> None
                in
                match hoisted with
                | Some (target, others) ->
                  add_placement ctx target
                    (Rq_shift
                       { rs_array = arr; rs_layout = layout; rs_dim = dim;
                         rs_need = ps_need; rs_other = others })
                | None -> (
                  let others = List.map subst_odim ps_other in
                  if List.exists Option.is_none others then mark_fallback ctx sid
                  else
                    add_placement ctx sid
                      (Rq_shift
                         { rs_array = arr; rs_layout = layout; rs_dim = dim;
                           rs_need = ps_need; rs_other = List.map Option.get others }))
              end)))
      ex.Exports.ex_comms
  end

let comm_pass ctx (body : Ast.stmt list) =
  ctx.placements <- [];
  ctx.pending_out <- [];
  let rec walk (loops : (Ast.stmt * Ast.do_stmt) list) stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Do d -> walk (loops @ [ (s, d) ]) d.body
        | Ast.If i ->
          process_stmt loops s;
          walk loops i.then_;
          walk loops i.else_
        | Ast.Call (callee, actuals) when Dynamic_decomp.as_remap s = None ->
          process_stmt loops s;
          if not (List.mem s.Ast.sid ctx.fallbacks) then
            process_call_pendings ctx loops s.Ast.sid callee actuals
        | _ -> process_stmt loops s)
      stmts
  and process_stmt loops (s : Ast.stmt) =
    if not (List.mem s.Ast.sid ctx.fallbacks) then begin
      let loop_ctxs = List.map (fun (ls, ld) -> loop_ctx_of ctx ls ld) loops in
      let stmt_class = classify_stmt ctx loop_ctxs s in
      let outermost_sid =
        match loops with (ls, _) :: _ -> Some ls.Ast.sid | [] -> None
      in
      List.iter
        (fun (r : Sections.ref_info) ->
          if (not r.Sections.is_write) && r.Sections.sid = s.Ast.sid then
            process_read ctx r stmt_class ~outermost_sid)
        ctx.refs
    end
  in
  walk [] body

(* Loops (sids) whose subtree contains a fallback statement must run their
   full bounds on every processor. *)
let demote_loops_with_fallbacks ctx (body : Ast.stmt list) : bool =
  let changed = ref false in
  let rec walk (enclosing : int list) stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        (if List.mem s.Ast.sid ctx.fallbacks then
           List.iter
             (fun lsid ->
               match partition_of ctx lsid with
               | Unpart -> ()
               | _ ->
                 ctx.partitions <-
                   (lsid, Unpart) :: List.remove_assoc lsid ctx.partitions;
                 changed := true)
             enclosing);
        match s.Ast.kind with
        | Ast.Do d -> walk (s.Ast.sid :: enclosing) d.body
        | Ast.If i ->
          walk enclosing i.then_;
          walk enclosing i.else_
        | _ -> ())
      stmts
  in
  walk [] body;
  !changed

(* --- Emission ------------------------------------------------------------ *)

let runtime_ctx ctx sid : Runtime_res.ctx =
  { Runtime_res.nprocs = ctx.st.opts.Options.nprocs;
    symtab = ctx.symtab;
    is_dist =
      (fun name ->
        Symtab.is_array ctx.symtab name
        && Reaching_decomps.maybe_distributed ctx.st.rd ctx.pname sid name);
    fresh_tag = (fun () -> fresh ctx.st);
    fresh_tmp = (fun () -> Fmt.str "o$%d" (fresh ctx.st)) }

(* Fold PARAMETER constants into emitted expressions: the node program
   has no symbol table, so named compile-time constants must disappear. *)
let fold_params (symtab : Symtab.t) (body : Node.nstmt list) : Node.nstmt list =
  let rec fold (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Var v -> (
      match Symtab.param_value symtab v with
      | Some n -> Ast.Int_const n
      | None -> e)
    | Ast.Int_const _ | Ast.Real_const _ | Ast.Logical_const _ -> e
    | Ast.Ref (a, subs) -> Ast.Ref (a, List.map fold subs)
    | Ast.Funcall (f, args) -> Ast.Funcall (f, List.map fold args)
    | Ast.Bin (op, a, b) -> Ast.Bin (op, fold a, fold b)
    | Ast.Un (op, a) -> Ast.Un (op, fold a)
  in
  List.map (Node.map_exprs fold) body

let request_key = function
  | Rq_shift { rs_array; rs_dim; rs_other; rs_need; _ } ->
    Fmt.str "s|%s|%d|%s|%s" rs_array rs_dim
      (String.concat ";"
         (List.map
            (function
              | Comm.Od_point e -> Ast_printer.expr_to_string e
              | Comm.Od_range (a, b) ->
                Ast_printer.expr_to_string a ^ ":" ^ Ast_printer.expr_to_string b
              | Comm.Od_full (a, b) -> Fmt.str "F%d:%d" a b)
            rs_other))
      (String.concat "&" (Array.to_list (Array.map Iset.to_string rs_need)))
  | Rq_bcast { rb_array; rb_dim; rb_index; rb_other; _ } ->
    Fmt.str "b|%s|%d|%s|%s" rb_array rb_dim
      (Ast_printer.expr_to_string rb_index)
      (String.concat ";"
         (List.map
            (function
              | Comm.Od_point e -> Ast_printer.expr_to_string e
              | Comm.Od_range (a, b) ->
                Ast_printer.expr_to_string a ^ ":" ^ Ast_printer.expr_to_string b
              | Comm.Od_full (a, b) -> Fmt.str "F%d:%d" a b)
            rb_other))

let emit_request ctx ~loc (rq : request) : Node.nstmt list =
  let nprocs = ctx.st.opts.Options.nprocs in
  match rq with
  | Rq_shift { rs_array; rs_layout; rs_dim; rs_need; rs_other } ->
    let owned = Layout.owned rs_layout ~nprocs in
    Comm.emit_section_comm ~loc ~nprocs ~tag:(fresh ctx.st) ~array:rs_array
      ~owned ~dim:rs_dim ~rank:(Layout.rank rs_layout) ~need:rs_need
      ~other_dims:rs_other ()
  | Rq_bcast { rb_array; rb_layout; rb_dim; rb_index; rb_other } ->
    if ctx.st.opts.Options.use_collectives then
      [ Comm.emit_bcast_section ~loc ~nprocs ~site:(fresh ctx.st)
          ~array:rb_array ~layout:rb_layout ~dim:rb_dim ~index:rb_index
          ~other_dims:rb_other () ]
    else begin
      (* expand to P-1 point-to-point messages from the owner *)
      let root_tmp = Fmt.str "o$%d" (fresh ctx.st) in
      let tag = fresh ctx.st in
      let sec =
        Comm.assemble_section ~rank:(Layout.rank rb_layout) ~dim:rb_dim
          (rb_index, rb_index, int_e 1) rb_other
      in
      [ Node.N_assign (Ast.Var root_tmp, Comm.owner_expr ~nprocs rb_layout rb_index);
        Node.N_do
          { var = "p$"; lo = int_e 0; hi = int_e (nprocs - 1); step = None;
            body =
              [ Node.N_if
                  { cond =
                      Ast.Bin
                        ( Ast.And,
                          Ast.Bin (Ast.Eq, myp, Ast.Var root_tmp),
                          Ast.Bin (Ast.Ne, Ast.Var "p$", Ast.Var root_tmp) );
                    then_ =
                      [ Node.N_send
                          { dest = Ast.Var "p$"; parts = [ (rb_array, sec) ];
                            tag; loc } ];
                    else_ = [];
                    loc } ] };
        Node.N_if
          { cond = Ast.Bin (Ast.Ne, myp, Ast.Var root_tmp);
            then_ = [ Node.N_recv { src = Ast.Var root_tmp; tag; loc } ];
            else_ = [];
            loc } ]
    end

let emit_placed ctx ~loc sid : Node.nstmt list =
  let rqs = List.filter (fun (s, _) -> s = sid) ctx.placements in
  let deduped =
    Listx.dedup ~equal:(fun (_, a) (_, b) -> String.equal (request_key a) (request_key b)) rqs
    |> List.map snd
  in
  if not ctx.st.opts.Options.aggregate_messages then
    List.concat_map (emit_request ctx ~loc) deduped
  else begin
    (* aggregation (paper Fig. 11): shift transfers over the same layout
       and dimension at one placement share one message per processor
       pair *)
    let shift_key = function
      | Rq_shift { rs_layout; rs_dim; _ } ->
        Some (Fmt.str "%a|%d" Layout.pp rs_layout rs_dim, rs_layout, rs_dim)
      | Rq_bcast _ -> None
    in
    let groups =
      Listx.group_by
        ~key:(fun rq ->
          match shift_key rq with Some (k, _, _) -> k | None -> "")
        ~equal_key:String.equal deduped
    in
    List.concat_map
      (fun (key, members) ->
        if String.equal key "" || List.length members < 2 then
          List.concat_map (emit_request ctx ~loc) members
        else begin
          let layout, dim =
            match members with
            | Rq_shift { rs_layout; rs_dim; _ } :: _ -> (rs_layout, rs_dim)
            | _ ->
              Diag.internal ~pass:"codegen" "coalesced group without a shift request"
          in
          let parts =
            List.map
              (function
                | Rq_shift { rs_array; rs_need; rs_other; _ } ->
                  (rs_array, rs_need, rs_other)
                | Rq_bcast _ ->
                  Diag.internal ~pass:"codegen" "broadcast request in a shift group")
              members
          in
          let nprocs = ctx.st.opts.Options.nprocs in
          Comm.emit_section_comm_multi ~loc ~nprocs ~tag:(fresh ctx.st)
            ~owned:(Layout.owned layout ~nprocs) ~dim ~rank:(Layout.rank layout)
            ~parts ()
        end)
      groups
  end

let layout_of_decomp ctx name (d : Decomp.t) : Layout.t =
  Decomp.layout_of d ~bounds:(bounds_of ctx name) ~nprocs:ctx.st.opts.Options.nprocs

(* Node statements for a remap$ pseudo-statement. *)
let emit_remap ctx ~loc (r : Dynamic_decomp.remap) : Node.nstmt list =
  let rank = Symtab.rank ctx.symtab r.Dynamic_decomp.rm_array in
  let kinds =
    match Decomp.dist_dim r.Dynamic_decomp.rm_decomp with
    | None -> List.init rank (fun _ -> Ast.Star)
    | Some (d, k) -> List.init rank (fun i -> if i = d then k else Ast.Star)
  in
  let layout = layout_of_decomp ctx r.Dynamic_decomp.rm_array (Decomp.of_kinds kinds) in
  [ Node.N_remap
      { array = r.Dynamic_decomp.rm_array; new_layout = layout;
        move = r.Dynamic_decomp.rm_move; site = fresh ctx.st; loc } ]

let in_c_owner_mode ctx = ctx.proc_constraint <> Exports.C_none

(* Scalar-result broadcasts for a guarded call. *)
let call_scalar_bcasts ctx ~loc callee actuals root : Node.nstmt list =
  let ex = export_of ctx.st callee in
  let callee_cu = (Acg.proc ctx.st.acg callee).Acg.cu in
  let callee_formals = callee_cu.Sema.unit_.Ast.formals in
  List.concat
    (List.map2
       (fun f a ->
         match a with
         | Ast.Var v
           when Exports.SS.mem f ex.Exports.ex_mod_scalars
                && not (Symtab.is_array ctx.symtab v) ->
           [ Comm.emit_bcast_scalar ~loc ~site:(fresh ctx.st) ~root v ]
         | _ -> [])
       callee_formals actuals)
  @ List.filter_map
      (fun (n, _) ->
        if
          Exports.SS.mem n ex.Exports.ex_mod_scalars
          && not (Symtab.is_array ctx.symtab n)
        then Some (Comm.emit_bcast_scalar ~loc ~site:(fresh ctx.st) ~root n)
        else None)
      (Symtab.commons callee_cu.Sema.symtab)

let rec emit_block ctx (loops : (Ast.stmt * Ast.do_stmt) list) (stmts : Ast.stmt list) :
    Node.nstmt list =
  List.concat_map (emit_stmt ctx loops) stmts

and emit_stmt ctx loops (s : Ast.stmt) : Node.nstmt list =
  let loc = s.Ast.loc in
  let pre = emit_placed ctx ~loc s.Ast.sid in
  let loop_ctxs = List.map (fun (ls, ld) -> loop_ctx_of ctx ls ld) loops in
  let body =
    match Dynamic_decomp.as_remap s with
    | Some r -> emit_remap ctx ~loc r
    | None ->
      if List.mem s.Ast.sid ctx.fallbacks then
        Runtime_res.compile_stmt (runtime_ctx ctx s.Ast.sid) s
      else (
        match s.Ast.kind with
        | Ast.Assign (lhs, rhs) -> (
          match classify_stmt ctx loop_ctxs s with
          | W_replicated -> [ Node.N_assign (lhs, rhs) ]
          | W_owner { wo_index; wo_layout; _ } ->
            if in_c_owner_mode ctx then [ Node.N_assign (lhs, rhs) ]
            else
              [ Node.N_if
                  { cond =
                      Comm.owner_guard ~nprocs:ctx.st.opts.Options.nprocs wo_layout
                        wo_index;
                    then_ = [ Node.N_assign (lhs, rhs) ];
                    else_ = [];
                    loc } ]
          | W_by_loop b -> (
            match partition_of ctx b.wl_lsid with
            | Part_concrete _ | Part_symbolic _ -> [ Node.N_assign (lhs, rhs) ]
            | Unpart ->
              [ Node.N_if
                  { cond =
                      Comm.owner_guard ~nprocs:ctx.st.opts.Options.nprocs b.wl_layout
                        b.wl_index;
                    then_ = [ Node.N_assign (lhs, rhs) ];
                    else_ = [];
                    loc } ])
          | W_fallback -> Runtime_res.compile_stmt (runtime_ctx ctx s.Ast.sid) s)
        | Ast.Do d -> emit_do ctx loops s d
        | Ast.If i ->
          [ Node.N_if
              { cond = i.Ast.cond;
                then_ = emit_block ctx loops i.Ast.then_;
                else_ = emit_block ctx loops i.Ast.else_;
                loc } ]
        | Ast.Call (callee, actuals) -> (
          match classify_stmt ctx loop_ctxs s with
          | W_replicated -> [ Node.N_call (callee, actuals) ]
          | W_owner { wo_index; wo_layout; _ } ->
            if in_c_owner_mode ctx then [ Node.N_call (callee, actuals) ]
            else begin
              let root =
                Comm.owner_expr ~nprocs:ctx.st.opts.Options.nprocs wo_layout wo_index
              in
              Node.N_if
                { cond = Ast.Bin (Ast.Eq, myp, root);
                  then_ = [ Node.N_call (callee, actuals) ];
                  else_ = [];
                  loc }
              :: call_scalar_bcasts ctx ~loc callee actuals root
            end
          | W_by_loop b -> (
            match partition_of ctx b.wl_lsid with
            | Part_concrete _ | Part_symbolic _ ->
              (* processors run disjoint iterations: scalar results cannot
                 be broadcast here and must not escape the loop *)
              (let ex = export_of ctx.st callee in
               if not (Exports.SS.is_empty ex.Exports.ex_mod_scalars) then
                 Diag.warn_to ctx.st.sink
                   "scalar results of %s diverge across the partitioned loop in %s"
                   callee ctx.pname);
              [ Node.N_call (callee, actuals) ]
            | Unpart ->
              (* owner-guarded call inside a replicated loop: all
                 processors reach this point, so scalar results of the
                 callee are broadcast from the owner *)
              let root =
                Comm.owner_expr ~nprocs:ctx.st.opts.Options.nprocs b.wl_layout
                  b.wl_index
              in
              Node.N_if
                { cond = Ast.Bin (Ast.Eq, myp, root);
                  then_ = [ Node.N_call (callee, actuals) ];
                  else_ = [];
                  loc }
              :: call_scalar_bcasts ctx ~loc callee actuals root)
          | W_fallback ->
            Diag.error "cannot instantiate the computation partition for call to %s in %s"
              callee ctx.pname)
        | Ast.Align _ | Ast.Distribute _ -> []
        | Ast.Return -> [ Node.N_return ]
        | Ast.Print args ->
          [ Node.N_if
              { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
                then_ = [ Node.N_print args ];
                else_ = [];
                loc } ])
  in
  pre @ body

and emit_do ctx loops (s : Ast.stmt) (d : Ast.do_stmt) : Node.nstmt list =
  let inner = emit_block ctx (loops @ [ (s, d) ]) d.Ast.body in
  match partition_of ctx s.Ast.sid with
  | Unpart -> [ Node.N_do { var = d.Ast.var; lo = d.Ast.lo; hi = d.Ast.hi;
                            step = d.Ast.step; body = inner } ]
  | Part_concrete { sets; _ } -> (
    match Fit.fit_procset_opt sets with
    | Some { Fit.f_lo; f_hi; f_step; f_guard } ->
      let loop =
        Node.N_do
          { var = d.Ast.var; lo = f_lo; hi = f_hi;
            step = (match f_step with Ast.Int_const 1 -> None | e -> Some e);
            body = inner }
      in
      (match f_guard with
      | None -> [ loop ]
      | Some g -> [ Node.N_if { cond = g; then_ = [ loop ]; else_ = []; loc = s.Ast.loc } ])
    | None ->
      Diag.internal ~pass:"codegen" "missing layout for a partitioned loop")
  | Part_symbolic { layout; dim; shift } -> (
    let nprocs = ctx.st.opts.Options.nprocs in
    let dlo, _ = List.nth layout.Layout.bounds dim in
    match layout.Layout.dist with
    | Layout.Block b ->
      let _, dhi = List.nth layout.Layout.bounds dim in
      let los = Array.init nprocs (fun p -> dlo + (p * b) - shift) in
      let his = Array.init nprocs (fun p -> min dhi (dlo + ((p + 1) * b) - 1) - shift) in
      let lo_e = Ast.Funcall ("max", [ d.Ast.lo; Fit.expr_of_values los ]) in
      let hi_e = Ast.Funcall ("min", [ d.Ast.hi; Fit.expr_of_values his ]) in
      [ Node.N_do { var = d.Ast.var; lo = lo_e; hi = hi_e; step = None; body = inner } ]
    | Layout.Cyclic ->
      (* first iteration >= lo owned by my$p:
         lo + mod(mod(my$p + (dlo - shift) - lo, P) + P, P) *)
      let p_e = int_e nprocs in
      let base = Ast.Bin (Ast.Sub, Ast.Bin (Ast.Add, myp, int_e (dlo - shift)), d.Ast.lo) in
      let m1 = Ast.Funcall ("mod", [ base; p_e ]) in
      let m2 = Ast.Funcall ("mod", [ Ast.Bin (Ast.Add, m1, p_e); p_e ]) in
      let lo_e = Ast.Bin (Ast.Add, d.Ast.lo, m2) in
      [ Node.N_do
          { var = d.Ast.var; lo = lo_e; hi = d.Ast.hi; step = Some p_e; body = inner } ]
    | Layout.Block_cyclic _ | Layout.Replicated ->
      Diag.internal ~pass:"codegen" "unsupported distribution in a symbolic partition")

(* --- Procedure compilation ---------------------------------------------- *)

(* Is [x]'s first touch in this procedure a full overwrite (value kill)? *)
let computes_value_kill ctx (body : Ast.stmt list) (x : string) : bool =
  let touches (s : Ast.stmt) =
    Dynamic_decomp.subtree_uses_array
      ~call_touches:(fun callee args ->
        let ex = export_of ctx.st callee in
        ignore ex;
        List.fold_left
          (fun acc a ->
            match a with
            | Ast.Var v when Symtab.is_array ctx.symtab v -> Dynamic_decomp.SS.add v acc
            | _ -> acc)
          Dynamic_decomp.SS.empty args)
      x s
  in
  let rec first_touch = function
    | [] -> None
    | s :: rest -> if touches s then Some s else first_touch rest
  in
  match first_touch body with
  | None -> false
  | Some s -> (
    match s.Ast.kind with
    | Ast.Call (callee, args) -> (
      match
        List.find_map
          (fun (i, a) ->
            match a with
            | Ast.Var v when String.equal v x -> Some i
            | _ -> None)
          (List.mapi (fun i a -> (i, a)) args)
      with
      | Some idx -> (
        let ex = export_of ctx.st callee in
        match List.nth_opt (Acg.proc ctx.st.acg callee).Acg.cu.Sema.unit_.Ast.formals idx with
        | Some f -> Exports.SS.mem f ex.Exports.ex_value_kill
        | None -> false)
      | None -> false)
    | _ -> (
      match Symtab.array_info ctx.symtab x with
      | Some info -> Dynamic_decomp.fully_overwrites ctx.symtab info.Symtab.dims x s
      | None -> false))

let compile_proc (st : state) (cu : Sema.checked_unit) : Node.nproc =
  let u = cu.Sema.unit_ in
  let pname = u.Ast.uname in
  let symtab = cu.Sema.symtab in
  let nprocs = st.opts.Options.nprocs in
  let ctx0 =
    { st; cu; pname; symtab; formals = u.Ast.formals;
      refs = []; override = SM.empty; partitions = []; fallbacks = [];
      placements = []; pending_out = []; proc_constraint = Exports.C_none;
      mod_scalars = SS.empty }
  in
  (* dynamic decomposition analysis and remap materialization *)
  let dyn = analyze_dyn ctx0 u.Ast.body in
  let ctx = { ctx0 with override = dyn.dyn_override } in
  let body = materialize_remaps ctx dyn u.Ast.body in
  (* remap optimization (interprocedural strategy, caller-side) *)
  let call_touches callee args =
    if String.equal callee "remap$" then Dynamic_decomp.SS.empty
    else begin
      let touched = Side_effects.appear st.effects callee in
      let callee_formals =
        try (Acg.proc st.acg callee).Acg.cu.Sema.unit_.Ast.formals with _ -> []
      in
      if List.length callee_formals <> List.length args then Dynamic_decomp.SS.empty
      else begin
        let through_formals =
          List.fold_left2
            (fun acc f a ->
              match a with
              | Ast.Var v when Side_effects.S.mem f touched ->
                Dynamic_decomp.SS.add v acc
              | _ -> acc)
            Dynamic_decomp.SS.empty callee_formals args
        in
        (* touched COMMON names pass through by identity *)
        Side_effects.S.fold
          (fun n acc ->
            if Symtab.is_common symtab n then Dynamic_decomp.SS.add n acc else acc)
          touched through_formals
      end
    end
  in
  let initial_decomps =
    Symtab.fold symtab
      (fun name entry acc ->
        match entry with
        | Symtab.Array _ ->
          let d =
            if List.mem name u.Ast.formals then
              match SM.find_opt name dyn.dyn_override with
              | Some d -> d
              | None -> inherited_decomp ctx name
            else Decomp.replicated (Symtab.rank symtab name)
          in
          Dynamic_decomp.DM.add name d acc
        | _ -> acc)
      Dynamic_decomp.DM.empty
  in
  let value_killer callee idx =
    let ex = export_of st callee in
    match
      try List.nth_opt (Acg.proc st.acg callee).Acg.cu.Sema.unit_.Ast.formals idx
      with _ -> None
    with
    | Some f -> Exports.SS.mem f ex.Exports.ex_value_kill
    | None -> false
  in
  let body, opt_stats =
    if st.opts.Options.strategy = Options.Interproc then
      Dynamic_decomp.optimize st.opts.Options.remap_level ~call_touches
        ~initial:initial_decomps ~symtab ~value_killer body
    else
      (body,
       { Dynamic_decomp.dead_removed = 0; redundant_removed = 0; hoisted = 0; kills = 0 })
  in
  st.remap_stats <- (pname, opt_stats) :: st.remap_stats;
  let ctx = { ctx with refs = Sections.collect symtab body } in
  (* computation partitioning, constraint detection, communication *)
  partition_pass ctx body;
  ctx.proc_constraint <- detect_constraint ctx body;
  comm_pass ctx body;
  let rec fixpoint n =
    if n > 8 then Diag.error "partition/communication fixpoint diverged in %s" pname;
    if demote_loops_with_fallbacks ctx body then begin
      ctx.proc_constraint <- detect_constraint ctx body;
      comm_pass ctx body;
      fixpoint (n + 1)
    end
  in
  fixpoint 0;
  ctx.mod_scalars <-
    (let gmod = Side_effects.gmod st.effects pname in
     let common_scalars =
       List.filter_map
         (fun (n, _) ->
           match Symtab.find symtab n with
           | Some (Symtab.Scalar _) -> Some n
           | _ -> None)
         (Symtab.commons symtab)
     in
     List.fold_left
       (fun acc f ->
         match Symtab.find symtab f with
         | Some (Symtab.Scalar _) when Side_effects.S.mem f gmod -> SS.add f acc
         | _ -> acc)
       SS.empty
       (u.Ast.formals @ common_scalars));
  (* emission *)
  let main_body = emit_block ctx [] body in
  let prologue = Node.N_assign (Ast.Var "my$p", Ast.Funcall ("myproc", [])) in
  let emitted, scalar_bcasts_at_end =
    match (st.opts.Options.strategy, ctx.proc_constraint) with
    | Options.Immediate, Exports.C_owner { co_array; co_dim = _; co_index } ->
      (* self-guarded body; broadcasts hoisted outside the guard *)
      let layout =
        layout_of_decomp ctx co_array
          (match SM.find_opt co_array ctx.override with
          | Some d -> d
          | None -> inherited_decomp ctx co_array)
      in
      let index = Affine.to_expr co_index in
      let root = Comm.owner_expr ~nprocs layout index in
      (* separate top-level broadcast statements (collectives must involve
         every processor) from the guarded computation *)
      let colls, rest =
        List.partition (function Node.N_bcast _ -> true | _ -> false) main_body
      in
      let guarded_body =
        colls
        @ [ Node.N_if
              { cond = Ast.Bin (Ast.Eq, myp, root); then_ = rest; else_ = []; loc = Loc.none } ]
      in
      let bcasts =
        List.filter_map
          (fun f ->
            if SS.mem f ctx.mod_scalars then
              Some (Comm.emit_bcast_scalar ~site:(fresh st) ~root f)
            else None)
          u.Ast.formals
      in
      (guarded_body, bcasts)
    | _ -> (main_body, [])
  in
  (* exports *)
  let export =
    { Exports.ex_proc = pname;
      ex_constraint =
        (if st.opts.Options.strategy = Options.Interproc then ctx.proc_constraint
         else Exports.C_none);
      ex_comms = (if st.opts.Options.strategy = Options.Interproc then ctx.pending_out else []);
      ex_before = (if st.opts.Options.strategy = Options.Interproc then dyn.dyn_before else []);
      ex_after = (if st.opts.Options.strategy = Options.Interproc then dyn.dyn_after else []);
      ex_use =
        List.fold_left
          (fun acc f ->
            if
              Symtab.is_array symtab f
              && (not (SM.mem f dyn.dyn_override))
              && Side_effects.S.mem f (Side_effects.appear st.effects pname)
            then Exports.SS.add f acc
            else acc)
          Exports.SS.empty
          (u.Ast.formals @ List.map fst (Symtab.commons symtab));
      ex_kill =
        SM.fold (fun f _ acc -> Exports.SS.add f acc) dyn.dyn_override Exports.SS.empty;
      ex_mod_scalars = SS.fold Exports.SS.add ctx.mod_scalars Exports.SS.empty;
      ex_value_kill =
        List.fold_left
          (fun acc f ->
            if Symtab.is_array symtab f && computes_value_kill ctx u.Ast.body f then
              Exports.SS.add f acc
            else acc)
          Exports.SS.empty
          (u.Ast.formals @ List.map fst (Symtab.commons symtab)) }
  in
  Hashtbl.replace st.exports pname export;
  (* node procedure assembly *)
  let arrays =
    List.map
      (fun (name, (info : Symtab.array_info)) ->
        let layout =
          if List.mem name u.Ast.formals then
            layout_of_decomp ctx name
              (match SM.find_opt name dyn.dyn_override with
              | Some d -> d
              | None -> inherited_decomp ctx name)
          else Layout.replicated info.Symtab.dims
        in
        { Node.ad_name = name; ad_elt = info.Symtab.elt; ad_layout = layout })
      (Symtab.arrays symtab)
  in
  let scalars =
    Symtab.fold symtab
      (fun name entry acc ->
        match entry with Symtab.Scalar ty -> (name, ty) :: acc | _ -> acc)
      []
  in
  { Node.np_name = pname;
    np_formals = u.Ast.formals;
    np_arrays = arrays;
    np_scalars = scalars;
    np_body = fold_params symtab ((prologue :: emitted) @ scalar_bcasts_at_end) }

(* --- Run-time resolution strategy ---------------------------------------- *)

(* Tolerant inherited decomposition: with cloning disabled a formal may
   have several inherited decompositions; pick one for the (informational)
   declaration layout. *)
let inherited_decomp_any ctx (x : string) : Decomp.t =
  let fact = Reaching_decomps.reaching_of ctx.st.rd ctx.pname in
  let rank = Symtab.rank ctx.symtab x in
  match SM.find_opt x fact with
  | Some r -> (
    match Decomp.Set.elements r.Decomp.decomps with
    | d :: _ -> d
    | [] -> Decomp.replicated rank)
  | None -> Decomp.replicated rank

let compile_proc_runtime_res (st : state) (cu : Sema.checked_unit) : Node.nproc =
  let u = cu.Sema.unit_ in
  let symtab = cu.Sema.symtab in
  let ctx0 =
    { st; cu; pname = u.Ast.uname; symtab; formals = u.Ast.formals;
      refs = []; override = SM.empty; partitions = []; fallbacks = [];
      placements = []; pending_out = []; proc_constraint = Exports.C_none;
      mod_scalars = SS.empty }
  in
  let dyn = analyze_dyn ctx0 u.Ast.body in
  let body = materialize_remaps ctx0 dyn u.Ast.body in
  let rec emit stmts =
    List.concat_map
      (fun (s : Ast.stmt) ->
        match Dynamic_decomp.as_remap s with
        | Some r -> emit_remap ctx0 ~loc:s.Ast.loc r
        | None -> (
          match s.Ast.kind with
          | Ast.Do d ->
            [ Node.N_do
                { var = d.Ast.var; lo = d.Ast.lo; hi = d.Ast.hi; step = d.Ast.step;
                  body = emit d.Ast.body } ]
          | Ast.If i ->
            Runtime_res.compile_stmt (runtime_ctx ctx0 s.Ast.sid)
              { s with kind = Ast.If { i with then_ = []; else_ = [] } }
            |> List.map (function
                 | Node.N_if { cond; loc; _ } ->
                   Node.N_if
                     { cond; then_ = emit i.Ast.then_; else_ = emit i.Ast.else_;
                       loc }
                 | other -> other)
          | _ -> Runtime_res.compile_stmt (runtime_ctx ctx0 s.Ast.sid) s))
      stmts
  in
  let emitted = emit body in
  let arrays =
    List.map
      (fun (name, (info : Symtab.array_info)) ->
        let layout =
          if List.mem name u.Ast.formals then
            layout_of_decomp ctx0 name (inherited_decomp_any ctx0 name)
          else Layout.replicated info.Symtab.dims
        in
        { Node.ad_name = name; ad_elt = info.Symtab.elt; ad_layout = layout })
      (Symtab.arrays symtab)
  in
  let scalars =
    Symtab.fold symtab
      (fun name entry acc ->
        match entry with Symtab.Scalar ty -> (name, ty) :: acc | _ -> acc)
      []
  in
  { Node.np_name = u.Ast.uname;
    np_formals = u.Ast.formals;
    np_arrays = arrays;
    np_scalars = scalars;
    np_body =
      fold_params symtab
        (Node.N_assign (Ast.Var "my$p", Ast.Funcall ("myproc", [])) :: emitted) }

(* --- Program compilation -------------------------------------------------- *)

type compiled = {
  program : Node.program;
  cloned : Sema.checked_program;
  clone_result : Cloning.result;
  state : state;
}

(* The analysis phases are exposed individually so the pass manager
   (Pipeline) can time, dump and verify each one; [compile] composes
   them for callers wanting the one-call entry point. *)

let clone ?sink (opts : Options.t) (cp : Sema.checked_program) : Cloning.result =
  match opts.Options.strategy with
  | Options.Runtime_resolution -> { Cloning.cp; origin = Cloning.SM.empty; clones_made = 0 }
  | Options.Interproc | Options.Immediate -> Cloning.apply ?sink opts cp

let build_acg (cp : Sema.checked_program) : Acg.t =
  let acg = Acg.build cp in
  if Acg.is_recursive acg then Diag.error "recursive programs are not supported";
  acg

let compile_analyzed ?(sink = Diag.global) (opts : Options.t)
    ~(clone_result : Cloning.result) ~(acg : Acg.t) ~(rd : Reaching_decomps.t)
    ~(effects : Side_effects.t) : compiled =
  let cp = clone_result.Cloning.cp in
  (* Fortran D forbids dynamic decomposition of aliased variables
     (Section 6.4); reject such programs before generating code. *)
  ignore (Aliasing.check ~sink acg effects);
  let st =
    { opts; sink; acg; rd; effects; counter = 0; exports = Hashtbl.create 16;
      remap_stats = []; partition_log = [] }
  in
  let compile_one name =
    let cu = (Acg.proc acg name).Acg.cu in
    match opts.Options.strategy with
    | Options.Runtime_resolution -> compile_proc_runtime_res st cu
    | Options.Interproc | Options.Immediate -> compile_proc st cu
  in
  let procs = List.map compile_one (Acg.reverse_topo_order acg) in
  (* keep source order stable for readability: main last compiled, list as
     source order *)
  let order = List.map (fun p -> p.Acg.pname) (Acg.procs acg) in
  let procs =
    List.filter_map
      (fun name -> List.find_opt (fun np -> String.equal np.Node.np_name name) procs)
      order
  in
  (* COMMON storage: collected from the main unit (Sema guarantees every
     unit declares each block identically); initial layouts are
     replicated — DISTRIBUTE statements materialize remaps *)
  let main_cu = (Acg.proc acg cp.Sema.main).Acg.cu in
  let common_arrays, common_scalars =
    List.fold_left
      (fun (arrs, scals) (name, _block) ->
        match Symtab.find_exn main_cu.Sema.symtab name with
        | Symtab.Array info ->
          ( arrs
            @ [ { Node.ad_name = name; ad_elt = info.Symtab.elt;
                  ad_layout = Layout.replicated info.Symtab.dims } ],
            scals )
        | Symtab.Scalar ty -> (arrs, scals @ [ (name, ty) ])
        | _ -> (arrs, scals))
      ([], [])
      (Symtab.commons main_cu.Sema.symtab)
  in
  { program =
      { Node.n_procs = procs; n_main = cp.Sema.main; n_nprocs = opts.Options.nprocs;
        n_common_arrays = common_arrays; n_common_scalars = common_scalars };
    cloned = cp;
    clone_result;
    state = st }

let compile ?sink (opts : Options.t) (cp : Sema.checked_program) : compiled =
  let clone_result = clone ?sink opts cp in
  let acg = build_acg clone_result.Cloning.cp in
  let rd = Reaching_decomps.compute ?sink acg in
  let effects = Side_effects.compute acg in
  compile_analyzed ?sink opts ~clone_result ~acg ~rd ~effects
