(** Procedure cloning for reaching decompositions (paper Section 5.2,
    Figure 8): call sites are partitioned so that all calls in one class
    provide the same (Appear-filtered) decompositions; each class gets
    its own clone, giving every array a unique reaching decomposition
    inside each procedure body.  Clones are materialized
    source-to-source and the program is re-checked, which renumbers
    statement ids consistently. *)

open Fd_frontend

module SM : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type result = {
  cp : Sema.checked_program;  (** the cloned program *)
  origin : string SM.t;       (** clone name -> original procedure name *)
  clones_made : int;
}

val apply : ?sink:Fd_support.Diag.sink -> Options.t -> Sema.checked_program -> result
(** Iterates (callers before callees) to a fixed point; respects
    [clone_limit] and [enable_cloning]. *)

val origin_of : result -> string -> string
