(* Pass-manager substrate: the shared pipeline context and the typed
   description of one compiler pass.  See Pipeline for the standard pass
   list and the runner. *)

open Fd_support
open Fd_frontend
open Fd_callgraph

type ctx = {
  opts : Options.t;
  sink : Diag.sink;
  file : string option;
  source : string option;
  mutable parsed : Ast.program option;
  mutable checked : Sema.checked_program option;
  mutable clone_result : Cloning.result option;
  mutable acg : Acg.t option;
  mutable rd : Reaching_decomps.t option;
  mutable effects : Side_effects.t option;
  mutable summaries : (string * Local_summary.t) list option;
  mutable compiled : Codegen.compiled option;
  mutable findings : Fd_verify.Finding.t list option;
  mutable cost : Fd_verify.Cost.t option;
}

type status = I_not_checked | I_ok | I_violated of string list

type entry = {
  e_pass : string;
  e_time : float;
  e_size : int;
  e_status : status;
}

type report = entry list

type t = {
  p_name : string;
  p_doc : string;
  p_run : ctx -> unit;
  p_dump : ctx -> string option;
  p_verify : ctx -> string list;
  p_size : ctx -> int;
}

let missing pass = Diag.error "pipeline: the %s pass has not run" pass

let get_parsed c = match c.parsed with Some v -> v | None -> missing "parse"
let get_checked c = match c.checked with Some v -> v | None -> missing "sema"

let get_clone_result c =
  match c.clone_result with Some v -> v | None -> missing "cloning"

let get_acg c = match c.acg with Some v -> v | None -> missing "acg"
let get_rd c = match c.rd with Some v -> v | None -> missing "reaching_decomps"
let get_effects c = match c.effects with Some v -> v | None -> missing "side_effects"

let get_summaries c =
  match c.summaries with Some v -> v | None -> missing "local_summaries"

let get_compiled c = match c.compiled with Some v -> v | None -> missing "codegen"

let report_ok r =
  List.for_all (fun e -> match e.e_status with I_violated _ -> false | _ -> true) r

let violations r =
  List.concat_map
    (fun e ->
      match e.e_status with
      | I_violated msgs -> List.map (fun m -> (e.e_pass, m)) msgs
      | _ -> [])
    r

let pp_entry ppf e =
  Fmt.pf ppf "%-18s %9.3f ms  size %6d  %s" e.e_pass (e.e_time *. 1e3) e.e_size
    (match e.e_status with
    | I_not_checked -> "-"
    | I_ok -> "ok"
    | I_violated msgs -> Fmt.str "VIOLATED (%d)" (List.length msgs))
