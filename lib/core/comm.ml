(* Communication generation: turn concrete per-processor need sets into
   guarded send/recv statements (with closed-form sections where an affine
   form in my$p exists) and one-owner/all-consumer sections into
   broadcasts.  This implements instantiation of the RSDs the analysis
   phases delay and propagate (paper Sections 5.4, Figure 11). *)

open Fd_support
open Fd_frontend
open Fd_machine

let int_e n = Ast.Int_const n
let myp = Fit.myp

type other_dim =
  | Od_point of Ast.expr             (* single index expression *)
  | Od_range of Ast.expr * Ast.expr  (* contiguous index range *)
  | Od_full of int * int             (* whole declared extent *)

let other_dim_section = function
  | Od_point e -> (e, e, int_e 1)
  | Od_range (lo, hi) -> (lo, hi, int_e 1)
  | Od_full (lo, hi) -> (int_e lo, int_e hi, int_e 1)

(* Assemble a full section: [other_dims] lists the non-distributed
   dimensions in order; the distributed dimension's triplet is inserted at
   position [dim]. *)
let assemble_section ~rank ~dim dist_triplet (other_dims : other_dim list) :
    Node.section =
  if List.length other_dims <> rank - 1 then
    Diag.error "communication section rank mismatch";
  let rec build d others =
    if d >= rank then []
    else if d = dim then dist_triplet :: build (d + 1) others
    else
      match others with
      | o :: rest -> other_dim_section o :: build (d + 1) rest
      | [] -> Diag.internal ~pass:"codegen" "section dimension underflow"
  in
  build 0 other_dims

let guarded ?(loc = Loc.none) guard stmts =
  match (guard, stmts) with
  | _, [] -> []
  | None, _ -> stmts
  | Some (Ast.Logical_const false), _ -> []
  | Some g, _ -> [ Node.N_if { cond = g; then_ = stmts; else_ = []; loc } ]

let elements_of_other_dim = function
  | Od_point _ -> 1
  | Od_range _ -> -1 (* unknown statically; not needed *)
  | Od_full (lo, hi) -> hi - lo + 1

let _ = elements_of_other_dim

(* Emit the guarded send/recv statements realizing point-to-point section
   transfers: for each part (array, need, other_dims), processor p must
   come to hold need(p); owned(q) says who holds what.  Several parts
   aggregate into one message per processor pair (paper Fig. 11).
   Senders are emitted before receivers (sends are asynchronous), grouped
   by sender-receiver offset so the common shift patterns compile to one
   guarded statement each. *)
let emit_section_comm_multi ?(loc = Loc.none) ~nprocs ~tag
    ~(owned : Iset.t array) ~dim ~rank
    ~(parts : (string * Iset.t array * other_dim list) list) () :
    Node.nstmt list =
  (* per-part transfer matrices *)
  let xfers =
    List.map
      (fun (array, need, other_dims) ->
        let xfer = Array.make_matrix nprocs nprocs Iset.empty in
        for p = 0 to nprocs - 1 do
          let nonlocal = Iset.diff need.(p) owned.(p) in
          if not (Iset.is_empty nonlocal) then
            for q = 0 to nprocs - 1 do
              if q <> p then begin
                let s = Iset.inter nonlocal owned.(q) in
                if not (Iset.is_empty s) then xfer.(q).(p) <- s
              end
            done
        done;
        (array, xfer, other_dims))
      parts
  in
  let pair_nonempty q p =
    List.exists (fun (_, xfer, _) -> not (Iset.is_empty xfer.(q).(p))) xfers
  in
  let any = ref false in
  for q = 0 to nprocs - 1 do
    for p = 0 to nprocs - 1 do
      if pair_nonempty q p then any := true
    done
  done;
  if not !any then []
  else begin
    (* offset classes present *)
    let deltas = ref [] in
    for q = 0 to nprocs - 1 do
      for p = 0 to nprocs - 1 do
        if pair_nonempty q p && not (List.mem (q - p) !deltas) then
          deltas := (q - p) :: !deltas
      done
    done;
    let deltas = List.sort compare !deltas in
    let sends = ref [] and recvs = ref [] in
    let emit_fallback_pair q p =
      (* one concrete message for the pair, all parts inline *)
      let msg_parts =
        List.concat_map
          (fun (array, xfer, other_dims) ->
            List.map
              (fun t ->
                ( array,
                  assemble_section ~rank ~dim
                    (int_e (Triplet.lo t), int_e (Triplet.hi t),
                     int_e (Triplet.step t))
                    other_dims ))
              (Iset.triplets xfer.(q).(p)))
          xfers
      in
      if msg_parts <> [] then begin
        sends :=
          guarded ~loc
            (Some (Ast.Bin (Ast.Eq, myp, int_e q)))
            [ Node.N_send { dest = int_e p; parts = msg_parts; tag; loc } ]
          @ !sends;
        recvs :=
          guarded ~loc
            (Some (Ast.Bin (Ast.Eq, myp, int_e p)))
            [ Node.N_recv { src = int_e q; tag; loc } ]
          @ !recvs
      end
    in
    List.iter
      (fun delta ->
        (* sender q transfers to q - delta; fit each part's section *)
        let fitted =
          List.map
            (fun (array, xfer, other_dims) ->
              let send_sets =
                Array.init nprocs (fun q ->
                    let p = q - delta in
                    if p >= 0 && p < nprocs then xfer.(q).(p) else Iset.empty)
              in
              (array, send_sets, other_dims, Fit.fit_procset_opt send_sets))
            xfers
        in
        let all_fit =
          List.for_all (fun (_, sets, _, f) ->
              f <> None || Array.for_all Iset.is_empty sets)
            fitted
        in
        if all_fit then begin
          (* the message exists on processors where any part is nonempty *)
          let send_mask =
            Array.init nprocs (fun q ->
                let p = q - delta in
                p >= 0 && p < nprocs && pair_nonempty q p)
          in
          let msg_parts =
            List.filter_map
              (fun (array, sets, other_dims, f) ->
                match f with
                | None -> None
                | Some { Fit.f_lo; f_hi; f_step; f_guard = _ } ->
                  (* empty processors inside the send mask rely on the
                     fitted lo > hi junk to contribute no elements; verify
                     that holds, else fall back *)
                  let ok = ref true in
                  Array.iteri
                    (fun q m ->
                      if m && Iset.is_empty sets.(q) then
                        (* the fit was built with lo=1 > hi=0 junk on empty
                           processors only when the guard was dropped; with
                           a guard we cannot inline this part *)
                        ok := false)
                    send_mask;
                  if !ok then
                    Some (array, assemble_section ~rank ~dim (f_lo, f_hi, f_step) other_dims)
                  else None)
              fitted
          in
          let complete =
            List.length msg_parts
            = List.length
                (List.filter
                   (fun (_, sets, _, _) -> not (Array.for_all Iset.is_empty sets))
                   fitted)
          in
          if complete && msg_parts <> [] then begin
            let dest =
              if delta > 0 then Ast.Bin (Ast.Sub, myp, int_e delta)
              else Ast.Bin (Ast.Add, myp, int_e (-delta))
            in
            sends :=
              !sends
              @ guarded ~loc (Fit.guard_of_mask send_mask)
                  [ Node.N_send { dest; parts = msg_parts; tag; loc } ];
            let recv_mask =
              Array.init nprocs (fun p ->
                  let q = p + delta in
                  q >= 0 && q < nprocs && pair_nonempty q p)
            in
            let src =
              if delta > 0 then Ast.Bin (Ast.Add, myp, int_e delta)
              else Ast.Bin (Ast.Sub, myp, int_e (-delta))
            in
            recvs :=
              !recvs
              @ guarded ~loc (Fit.guard_of_mask recv_mask)
                  [ Node.N_recv { src; tag; loc } ]
          end
          else
            for q = 0 to nprocs - 1 do
              let p = q - delta in
              if p >= 0 && p < nprocs && pair_nonempty q p then emit_fallback_pair q p
            done
        end
        else
          for q = 0 to nprocs - 1 do
            let p = q - delta in
            if p >= 0 && p < nprocs && pair_nonempty q p then emit_fallback_pair q p
          done)
      deltas;
    !sends @ !recvs
  end

let emit_section_comm ?(loc = Loc.none) ~nprocs ~tag ~array
    ~(owned : Iset.t array) ~dim ~rank ~(need : Iset.t array)
    ~(other_dims : other_dim list) () : Node.nstmt list =
  emit_section_comm_multi ~loc ~nprocs ~tag ~owned ~dim ~rank
    ~parts:[ (array, need, other_dims) ] ()

(* Owner arithmetic for an index expression under a layout. *)
let owner_expr ~nprocs (layout : Layout.t) (index : Ast.expr) : Ast.expr =
  match (layout.Layout.dist_dim, layout.Layout.dist) with
  | None, _ | _, Layout.Replicated -> int_e 0
  | Some d, Layout.Block b ->
    let lo, _ = List.nth layout.Layout.bounds d in
    let shifted =
      if lo = 0 then index else Ast.Bin (Ast.Sub, index, int_e lo)
    in
    Ast.Funcall ("min", [ Ast.Bin (Ast.Div, shifted, int_e b); int_e (nprocs - 1) ])
  | Some d, Layout.Cyclic ->
    let lo, _ = List.nth layout.Layout.bounds d in
    let shifted =
      if lo = 0 then index else Ast.Bin (Ast.Sub, index, int_e lo)
    in
    Ast.Funcall ("mod", [ shifted; int_e nprocs ])
  | Some d, Layout.Block_cyclic b ->
    let lo, _ = List.nth layout.Layout.bounds d in
    let shifted =
      if lo = 0 then index else Ast.Bin (Ast.Sub, index, int_e lo)
    in
    Ast.Funcall
      ("mod", [ Ast.Bin (Ast.Div, shifted, int_e b); int_e nprocs ])

let owner_guard ~nprocs layout index =
  Ast.Bin (Ast.Eq, myp, owner_expr ~nprocs layout index)

(* Broadcast of the section of [array] at distributed index [index]
   (other dimensions per [other_dims]) from its owner to everyone. *)
let emit_bcast_section ?(loc = Loc.none) ~nprocs ~site ~array
    ~(layout : Layout.t) ~dim ~index ~(other_dims : other_dim list) () :
    Node.nstmt =
  let rank = Layout.rank layout in
  let sec = assemble_section ~rank ~dim (index, index, int_e 1) other_dims in
  Node.N_bcast
    { root = owner_expr ~nprocs layout index;
      payload = Node.P_section (array, sec);
      site; loc }

let emit_bcast_scalar ?(loc = Loc.none) ~site ~root (name : string) : Node.nstmt =
  Node.N_bcast { root; payload = Node.P_scalar name; site; loc }
