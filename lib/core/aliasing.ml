(* Aliasing restrictions (paper Section 6.4).

   Two names are aliased when they may refer to the same storage.  In the
   mini language aliases arise through parameter passing (the same array
   passed as two actuals of one call) and through COMMON (a COMMON array
   passed as an actual to a procedure that also touches it through the
   block).

   Fortran D *disallows dynamic data decomposition for aliased
   variables*: redistributing one alias would silently change the other's
   layout.  This pass finds intra-call aliases and rejects programs that
   combine them with dynamic decomposition of the affected formals; it
   also warns when aliased formals are both modified (a portability
   problem even in Fortran 77). *)

open Fd_support
open Fd_frontend
open Fd_callgraph

module SS = Set.Make (String)

type alias_site = {
  al_caller : string;
  al_callee : string;
  al_array : string;          (* the caller-side array *)
  al_formals : string list;   (* the >= 2 formals bound to it *)
  al_loc : Loc.t;
}

(* Formals of [proc] (or its descendants) that are dynamically
   redistributed: the targets of exported or local DISTRIBUTE statements
   reaching a formal array. *)
let redistributes (acg : Acg.t) : (string, SS.t) Hashtbl.t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun pname ->
      let p = Acg.proc acg pname in
      let u = p.Acg.cu.Sema.unit_ in
      let symtab = p.Acg.cu.Sema.symtab in
      let own = ref SS.empty in
      (* local DISTRIBUTE / ALIGN statements targeting formal arrays *)
      Ast.iter_stmts
        (fun s ->
          match s.Ast.kind with
          | Ast.Distribute { decomp; _ } ->
            if List.mem decomp u.Ast.formals || Symtab.is_common symtab decomp then
              own := SS.add decomp !own
            else if Symtab.is_decomposition symtab decomp then
              (* arrays aligned with this decomposition *)
              Ast.iter_stmts
                (fun s' ->
                  match s'.Ast.kind with
                  | Ast.Align { array; target; _ }
                    when String.equal target decomp
                         && (List.mem array u.Ast.formals
                            || Symtab.is_common symtab array) ->
                    own := SS.add array !own
                  | _ -> ())
                u.Ast.body
          | _ -> ())
        u.Ast.body;
      (* plus formals/commons forwarded to callees that redistribute them *)
      List.iter
        (fun (cs : Acg.call_site) ->
          match Hashtbl.find_opt table cs.Acg.callee with
          | None -> ()
          | Some callee_redist ->
            List.iter
              (fun (formal, actual) ->
                match actual with
                | Ast.Var v
                  when SS.mem formal callee_redist
                       && (List.mem v u.Ast.formals || Symtab.is_common symtab v) ->
                  own := SS.add v !own
                | _ -> ())
              (Acg.bindings acg cs);
            (* redistributed commons propagate by identity *)
            SS.iter
              (fun n -> if Symtab.is_common symtab n then own := SS.add n !own)
              callee_redist)
        p.Acg.calls;
      Hashtbl.replace table pname !own)
    (Acg.reverse_topo_order acg);
  table

(* All call sites that bind one caller array to several formals. *)
let alias_sites (acg : Acg.t) : alias_site list =
  List.concat_map
    (fun (p : Acg.proc) ->
      let symtab = p.Acg.cu.Sema.symtab in
      List.filter_map
        (fun (cs : Acg.call_site) ->
          let bindings = Acg.bindings acg cs in
          let by_array =
            List.filter_map
              (fun (f, a) ->
                match a with
                | Ast.Var v when Symtab.is_array symtab v -> Some (v, f)
                | _ -> None)
              bindings
            |> Listx.group_by ~key:fst ~equal_key:String.equal
          in
          let aliased =
            List.filter (fun (_, members) -> List.length members >= 2) by_array
          in
          match aliased with
          | [] -> None
          | (array, members) :: _ ->
            Some
              { al_caller = cs.Acg.caller;
                al_callee = cs.Acg.callee;
                al_array = array;
                al_formals = List.map snd members;
                al_loc = cs.Acg.cs_loc })
        p.Acg.calls)
    (Acg.procs acg)

(* A COMMON array passed as an actual argument to a procedure that also
   touches it through the COMMON block is an alias too. *)
let common_alias_sites (acg : Acg.t) (effects : Side_effects.t) : alias_site list =
  List.concat_map
    (fun (p : Acg.proc) ->
      let symtab = p.Acg.cu.Sema.symtab in
      List.concat_map
        (fun (cs : Acg.call_site) ->
          let callee = Acg.proc acg cs.Acg.callee in
          List.filter_map
            (fun (formal, actual) ->
              match actual with
              | Ast.Var v
                when Symtab.is_array symtab v
                     && Symtab.is_common symtab v
                     && Symtab.is_common callee.Acg.cu.Sema.symtab v
                     && Side_effects.S.mem v
                          (Side_effects.appear effects cs.Acg.callee) ->
                Some
                  { al_caller = cs.Acg.caller;
                    al_callee = cs.Acg.callee;
                    al_array = v;
                    al_formals = [ formal; v ];
                    al_loc = cs.Acg.cs_loc }
              | _ -> None)
            (Acg.bindings acg cs))
        p.Acg.calls)
    (Acg.procs acg)

(* Check the whole program; raises on Fortran D's forbidden combination,
   warns on double-modification of aliases. *)
let check ?(sink = Diag.global) (acg : Acg.t) (effects : Side_effects.t) : alias_site list =
  let redist = redistributes acg in
  let sites = alias_sites acg @ common_alias_sites acg effects in
  List.iter
    (fun site ->
      let callee_redist =
        match Hashtbl.find_opt redist site.al_callee with
        | Some s -> s
        | None -> SS.empty
      in
      let bad = List.filter (fun f -> SS.mem f callee_redist) site.al_formals in
      if bad <> [] then
        Diag.error ~loc:site.al_loc
          "array %s is aliased through formals %s of %s, which dynamically redistributes %s: Fortran D disallows dynamic decomposition of aliased variables"
          site.al_array
          (String.concat "," site.al_formals)
          site.al_callee
          (String.concat "," bad);
      let gmod = Side_effects.gmod effects site.al_callee in
      let modified = List.filter (fun f -> Side_effects.S.mem f gmod) site.al_formals in
      if List.length modified >= 2 then
        Diag.warn_to sink ~loc:site.al_loc
          "aliased formals %s of %s are both modified; behaviour depends on evaluation order"
          (String.concat "," modified)
          site.al_callee)
    sites;
  sites
