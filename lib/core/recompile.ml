(* Recompilation analysis (paper Section 8 and the ParaScope 3-phase
   scheme): after an edit, only procedures whose interprocedural *inputs*
   changed need recompiling.  A procedure's inputs are:

     - its own source (local summary digest),
     - the decompositions reaching it from callers,
     - every callee's caller-visible export (constraint, pending
       communication, DecompBefore/After, mod-scalars, value kills),
     - every callee's interface (formals, array shapes, side effects).

   [artifacts] captures digests of all of these for one program version;
   [must_recompile ~old_ ~new_] diffs two versions. *)

open Fd_frontend
open Fd_callgraph

module SM = Map.Make (String)
module SS = Set.Make (String)

type artifacts = {
  a_source : string SM.t;      (* proc -> source digest *)
  a_interface : string SM.t;   (* proc -> Local_summary interface digest *)
  a_reaching : string SM.t;    (* proc -> digest of Reaching(P) *)
  a_export : string SM.t;      (* proc -> digest of its export record *)
  a_callees : string list SM.t;
}

let digest s = Digest.to_hex (Digest.string s)

let artifacts ?(opts = Options.default) (cp : Sema.checked_program) : artifacts =
  (* One pipeline run produces every input we digest: the ACG, reaching
     decompositions and local summaries come straight from the pass
     context instead of being recomputed after the fact. *)
  let ctx = Pipeline.of_checked ~opts cp in
  ignore (Pipeline.run ctx);
  let compiled = Pass.get_compiled ctx in
  let acg = Pass.get_acg ctx in
  let rd = Pass.get_rd ctx in
  let summaries = Pass.get_summaries ctx in
  let origin name = Cloning.origin_of compiled.Codegen.clone_result name in
  (* aggregate per *original* procedure name (clones fold back in) *)
  let add m k v = SM.update k (function None -> Some [ v ] | Some l -> Some (v :: l)) m in
  let source = ref SM.empty
  and interface = ref SM.empty
  and reaching = ref SM.empty
  and export = ref SM.empty
  and callees = ref SM.empty in
  List.iter
    (fun (p : Acg.proc) ->
      let name = origin p.Acg.pname in
      let summary =
        match List.assoc_opt p.Acg.pname summaries with
        | Some s -> s
        | None -> Local_summary.of_unit p.Acg.cu
      in
      source := add !source name summary.Local_summary.source_digest;
      interface := add !interface name (Local_summary.interface_digest summary);
      reaching :=
        add !reaching name
          (Fmt.str "%a" Reaching_decomps.pp_proc_reaching (rd, p.Acg.pname));
      (match Hashtbl.find_opt compiled.Codegen.state.Codegen.exports p.Acg.pname with
      | Some ex -> export := add !export name (Fmt.str "%a" Exports.pp ex)
      | None -> ());
      callees :=
        add !callees name
          (String.concat "," (List.map origin (Acg.callees_of acg p.Acg.pname))))
    (Acg.procs acg);
  let fold m = SM.map (fun parts -> digest (String.concat "#" (List.sort compare parts))) m in
  { a_source = fold !source;
    a_interface = fold !interface;
    a_reaching = fold !reaching;
    a_export = fold !export;
    a_callees =
      SM.map
        (fun parts ->
          List.concat_map (String.split_on_char ',') parts
          |> List.filter (fun s -> s <> "")
          |> List.sort_uniq compare)
        !callees }

let get m k = SM.find_opt k m

let procs_of a = SM.bindings a.a_source |> List.map fst

(* Procedures that must be recompiled going from [old_] to [new_]. *)
let must_recompile ~(old_ : artifacts) ~(new_ : artifacts) : string list =
  let changed field p = get (field old_) p <> get (field new_) p in
  List.filter
    (fun p ->
      changed (fun a -> a.a_source) p
      || changed (fun a -> a.a_reaching) p
      || (match get new_.a_callees p with
         | Some cs ->
           List.exists
             (fun c ->
               changed (fun a -> a.a_export) c
               || changed (fun a -> a.a_interface) c)
             cs
         | None -> true))
    (procs_of new_)

(* Convenience: which procedures recompile after replacing one unit's
   source text? *)
let after_edit ?(opts = Options.default) ~(before : string) ~(after : string) () :
    string list * int =
  let old_ = artifacts ~opts (Sema.check_source before) in
  let new_ = artifacts ~opts (Sema.check_source after) in
  let r = must_recompile ~old_ ~new_ in
  (r, List.length (procs_of new_))
