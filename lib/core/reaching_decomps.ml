(* Reaching decompositions (paper Section 5.2, Figure 6).

   Local phase: a forward dataflow problem over each procedure's CFG
   computing, at every point, the set of decompositions reaching each
   array (ALIGN/DISTRIBUTE statements act as definitions; formal arrays
   start at the > "inherited" placeholder).

   Interprocedural phase: one top-down pass over the call graph in
   topological order computes Reaching(P) for each procedure by
   translating the local sets at each call site (actuals to formals),
   then expands local > placeholders. *)

open Fd_support
open Fd_frontend
open Fd_analysis
open Fd_callgraph

module SM = Map.Make (String)

type fact = Decomp.reaching SM.t

let fact_join (a : fact) (b : fact) : fact =
  SM.union (fun _ x y -> Some (Decomp.reaching_join x y)) a b

let fact_equal = SM.equal Decomp.reaching_equal

let get_reaching (f : fact) v =
  match SM.find_opt v f with Some r -> r | None -> Decomp.reaching_bottom

(* Static alignment map for one unit: array -> (target, subs).  ALIGN is
   executable in Fortran D; this compiler resolves alignment
   flow-insensitively (the last ALIGN for an array wins, with a warning
   when several disagree), which covers the paper's programs where ALIGN
   appears once per array. *)
let align_map ?(sink = Diag.global) (cu : Sema.checked_unit) :
    (string * Ast.align_sub list) SM.t =
  let m = ref SM.empty in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Align { array; target; subs } ->
        (match SM.find_opt array !m with
        | Some (t', s') when not (String.equal t' target && s' = subs) ->
          Diag.warn_to sink ~loc:s.Ast.loc
            "multiple differing ALIGNs for %s; using the last" array
        | _ -> ());
        m := SM.add array (target, subs) !m
      | _ -> ())
    cu.Sema.unit_.Ast.body;
  !m

(* Map a reaching set through a function on single decompositions. *)
let map_reaching f (r : Decomp.reaching) : Decomp.reaching =
  { Decomp.decomps =
      Decomp.Set.fold (fun d acc -> Decomp.Set.add (f d) acc) r.Decomp.decomps
        Decomp.Set.empty;
    top = r.Decomp.top }

(* Initial environment for a unit: formal and COMMON arrays inherit (>)
   in subroutines; everything else starts replicated (the implicit
   default decomposition).  In the main program nothing is inherited. *)
let initial_fact (cu : Sema.checked_unit) : fact =
  let u = cu.Sema.unit_ in
  Symtab.fold cu.Sema.symtab
    (fun name entry acc ->
      match entry with
      | Symtab.Array { dims; _ } ->
        let inherits =
          u.Ast.ukind = Ast.Subroutine
          && (List.mem name u.Ast.formals || Symtab.is_common cu.Sema.symtab name)
        in
        let v =
          if inherits then Decomp.reaching_top
          else Decomp.reaching_single (Decomp.replicated (List.length dims))
        in
        SM.add name v acc
      | Symtab.Decomposition dims ->
        SM.add name (Decomp.reaching_single (Decomp.replicated (List.length dims))) acc
      | Symtab.Scalar _ | Symtab.Param _ -> acc)
    SM.empty

let transfer (cu : Sema.checked_unit) (aligns : (string * Ast.align_sub list) SM.t)
    (node : Cfg.node) (fact : fact) : fact =
  match node with
  | Cfg.Entry | Cfg.Exit -> fact
  | Cfg.Stmt s -> (
    match s.Ast.kind with
    | Ast.Distribute { decomp; dists } ->
      let d = Decomp.of_kinds dists in
      if Symtab.is_decomposition cu.Sema.symtab decomp then begin
        let fact = SM.add decomp (Decomp.reaching_single d) fact in
        (* update every array aligned with this decomposition *)
        SM.fold
          (fun array (target, subs) acc ->
            if String.equal target decomp then
              let rank = Symtab.rank cu.Sema.symtab array in
              SM.add array
                (Decomp.reaching_single (Decomp.through_align ~array_rank:rank subs d))
                acc
            else acc)
          aligns fact
      end
      else
        (* DISTRIBUTE applied directly to an array *)
        SM.add decomp (Decomp.reaching_single d) fact
    | Ast.Align { array; target; subs } ->
      let rank = Symtab.rank cu.Sema.symtab array in
      let target_reaching = get_reaching fact target in
      SM.add array
        (map_reaching (Decomp.through_align ~array_rank:rank subs) target_reaching)
        fact
    | _ -> fact)

module Solver = Dataflow.Make (struct
  type t = fact

  let bottom = SM.empty
  let join = fact_join
  let equal = fact_equal
end)

type local_result = {
  cfg : Cfg.t;
  facts : Solver.result;
  aligns : (string * Ast.align_sub list) SM.t;
}

let solve_local ?(sink = Diag.global) ?(seed : fact option) (cu : Sema.checked_unit) : local_result =
  let cfg = Cfg.build cu.Sema.unit_.Ast.body in
  let aligns = align_map ~sink cu in
  let init = match seed with Some f -> f | None -> initial_fact cu in
  let facts =
    Solver.solve ~direction:Dataflow.Forward ~init
      ~transfer:(fun _ node fact -> transfer cu aligns node fact)
      cfg
  in
  { cfg; facts; aligns }

(* Fact at the program point *before* statement [sid]. *)
let fact_before (lr : local_result) sid : fact =
  match Cfg.node_of_sid lr.cfg sid with
  | Some n -> lr.facts.Solver.input.(n)
  | None -> SM.empty

let fact_at_exit (lr : local_result) : fact = lr.facts.Solver.input.(Cfg.exit_)

let aligns_of (lr : local_result) = lr.aligns

(* --- Interprocedural phase ------------------------------------------- *)

type t = {
  reaching : (string, fact) Hashtbl.t;  (* proc -> formal array -> reaching *)
  local : (string, local_result) Hashtbl.t;  (* solved with expanded seeds *)
}

(* Expand > placeholders in [fact] using Reaching(P). *)
let expand_tops (reaching_p : fact) (fact : fact) : fact =
  SM.mapi
    (fun v (r : Decomp.reaching) ->
      if r.Decomp.top then
        let inherited = get_reaching reaching_p v in
        Decomp.reaching_join inherited
          { Decomp.decomps = r.Decomp.decomps; top = inherited.Decomp.top }
      else r)
    fact

let compute ?(sink = Diag.global) (acg : Acg.t) : t =
  let reaching : (string, fact) Hashtbl.t = Hashtbl.create 16 in
  let local : (string, local_result) Hashtbl.t = Hashtbl.create 16 in
  (* First pass: local solutions with unexpanded tops. *)
  List.iter
    (fun (p : Acg.proc) -> Hashtbl.replace local p.Acg.pname (solve_local ~sink p.Acg.cu))
    (Acg.procs acg);
  (* Top-down propagation in topological order. *)
  List.iter
    (fun pname ->
      let reaching_p =
        match Hashtbl.find_opt reaching pname with
        | Some f -> f
        | None -> SM.empty  (* main or unreachable: nothing inherited *)
      in
      (* Re-solve the local problem with inherited decompositions seeded,
         so call-site facts have tops expanded. *)
      let p = Acg.proc acg pname in
      let seed = expand_tops reaching_p (initial_fact p.Acg.cu) in
      let lr = solve_local ~sink ~seed p.Acg.cu in
      Hashtbl.replace local pname lr;
      (* Push translated facts into each callee's Reaching. *)
      List.iter
        (fun (cs : Acg.call_site) ->
          let fact = fact_before lr cs.Acg.cs_sid in
          let callee = Acg.proc acg cs.Acg.callee in
          let translated =
            List.fold_left
              (fun acc (formal, actual) ->
                match actual with
                | Ast.Var v when Symtab.is_array p.Acg.cu.Sema.symtab v ->
                  SM.add formal (get_reaching fact v) acc
                | _ -> acc)
              SM.empty
              (List.combine callee.Acg.cu.Sema.unit_.Ast.formals cs.Acg.actuals)
          in
          (* COMMON arrays are "simply copied" (paper Sec. 5.2) *)
          let translated =
            List.fold_left
              (fun acc (name, _block) ->
                if Symtab.is_array callee.Acg.cu.Sema.symtab name then
                  SM.add name (get_reaching fact name) acc
                else acc)
              translated
              (Symtab.commons callee.Acg.cu.Sema.symtab)
          in
          let existing =
            match Hashtbl.find_opt reaching cs.Acg.callee with
            | Some f -> f
            | None -> SM.empty
          in
          Hashtbl.replace reaching cs.Acg.callee (fact_join existing translated))
        p.Acg.calls)
    (Acg.topo_order acg);
  { reaching; local }

let reaching_of t pname : fact =
  match Hashtbl.find_opt t.reaching pname with Some f -> f | None -> SM.empty

let local_of t pname : local_result =
  match Hashtbl.find_opt t.local pname with
  | Some lr -> lr
  | None -> Diag.error "no reaching-decomposition solution for %s" pname

(* The unique decomposition of array [v] just before statement [sid] in
   procedure [pname]; errors when not unique (cloning should have made it
   unique). *)
let unique_at t pname sid v : Decomp.t option =
  let lr = local_of t pname in
  let r = get_reaching (fact_before lr sid) v in
  match (Decomp.Set.elements r.Decomp.decomps, r.Decomp.top) with
  | [], false -> None
  | [ d ], false -> Some d
  | [], true -> None
  | ds, _ ->
    Diag.error "array %s has %d reaching decompositions at s%d in %s%s" v
      (List.length ds) sid pname
      (if r.Decomp.top then " (plus inherited)" else "")

(* May [v] be distributed (non-replicated) at this point?  Tolerates
   multiple reaching decompositions (used by run-time resolution, which
   resolves ownership dynamically). *)
let maybe_distributed t pname sid v : bool =
  let lr = local_of t pname in
  let r = get_reaching (fact_before lr sid) v in
  r.Decomp.top
  || Decomp.Set.exists (fun d -> not (Decomp.is_replicated d)) r.Decomp.decomps

let pp_proc_reaching ppf (t, pname) =
  let f = reaching_of t pname in
  SM.iter (fun v r -> Fmt.pf ppf "%s: %a@." v Decomp.pp_reaching r) f
