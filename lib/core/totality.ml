(* Totality layer: the one place where the driver's exceptions become a
   disciplined exit-code table.  Every fdc entry point wraps its body in
   [protect]; whatever escapes is classified — user diagnostics,
   simulation failure, or a contained crash — and rendered structurally,
   never as a bare OCaml backtrace. *)

open Fd_support
open Fd_machine

type crash = {
  c_pass : string option;  (* attributed pass, when the site was converted *)
  c_loc : Loc.t option;
  c_message : string;
  c_backtrace : string;  (* raw backtrace, for the crash report body *)
}

type outcome =
  | Exit of int  (* the body ran to completion and chose its own code *)
  | Diagnostics of Diag.t list  (* compile errors/warnings -> exit 2 *)
  | Sim_failed of string  (* structured simulation failure -> exit 3 *)
  | Crash of crash  (* contained internal error -> exit 4 *)

(* The exit-code table (documented in the README):
   0 success; 1 verification/check/fuzz failure; 2 compile diagnostics;
   3 simulation error; 4 internal compiler crash.  cmdliner keeps its
   own 124 (CLI parse error) and 125 (internal cmdliner error). *)
let ok = 0
let check_failed = 1
let compile_failed = 2
let sim_failed = 3
let crashed = 4

let code = function
  | Exit n -> n
  | Diagnostics _ -> compile_failed
  | Sim_failed _ -> sim_failed
  | Crash _ -> crashed

let crash_of_diag (d : Diag.t) backtrace =
  { c_pass = d.Diag.pass;
    c_loc = (if d.Diag.loc = Loc.none then None else Some d.Diag.loc);
    c_message = d.Diag.message;
    c_backtrace = backtrace }

let protect (f : unit -> int) : outcome =
  Printexc.record_backtrace true;
  match f () with
  | n -> Exit n
  | exception Diag.Compile_errors ds -> Diagnostics ds
  | exception Diag.Compile_error d -> Diagnostics [ d ]
  | exception Diag.Internal_error d ->
    Crash (crash_of_diag d (Printexc.get_backtrace ()))
  | exception Scheduler.Sim_error e -> Sim_failed (Scheduler.error_to_string e)
  | exception exn ->
    (* residual escape hatch: an unconverted raise still becomes a
       structured report *)
    Crash
      { c_pass = None; c_loc = None; c_message = Printexc.to_string exn;
        c_backtrace = Printexc.get_backtrace () }

let pp_crash ppf (c : crash) =
  Fmt.pf ppf "fdc: internal error" ;
  (match c.c_pass with Some p -> Fmt.pf ppf " in pass %s" p | None -> ());
  (match c.c_loc with Some l -> Fmt.pf ppf " at %a" Loc.pp l | None -> ());
  Fmt.pf ppf ": %s@." c.c_message;
  if String.trim c.c_backtrace <> "" then
    Fmt.pf ppf "backtrace:@.%s" c.c_backtrace;
  Fmt.pf ppf
    "this is a compiler bug, not a problem with the input program;@.\
     re-run the same command line to reproduce it@."

let crash_to_json (c : crash) : Json.t =
  Json.Obj
    ([ ("error", Json.Str "internal") ]
    @ (match c.c_pass with Some p -> [ ("pass", Json.Str p) ] | None -> [])
    @ (match c.c_loc with
      | Some l -> [ ("loc", Json.Str (Fmt.str "%a" Loc.pp l)) ]
      | None -> [])
    @ [ ("message", Json.Str c.c_message) ])
