(** Aliasing restrictions (paper Section 6.4).

    Aliases arise through parameter passing (one array bound to several
    formals) and through COMMON (a COMMON array passed as an actual to a
    procedure that also touches it through the block).  Fortran D
    disallows dynamic data decomposition
    of aliased variables: this pass rejects programs that pass one array
    to several formals of a procedure that (transitively) redistributes
    any of them, and warns when aliased formals are both modified. *)

open Fd_callgraph

type alias_site = {
  al_caller : string;
  al_callee : string;
  al_array : string;          (** the caller-side array *)
  al_formals : string list;   (** the >= 2 formals bound to it *)
  al_loc : Fd_support.Loc.t;
}

val alias_sites : Acg.t -> alias_site list

val check :
  ?sink:Fd_support.Diag.sink -> Acg.t -> Side_effects.t -> alias_site list
(** @raise Fd_support.Diag.Compile_error on the forbidden
    aliasing + redistribution combination. *)
