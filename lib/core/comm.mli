(** Communication generation: turn concrete per-processor need sets into
    guarded send/recv statements (closed-form sections where an affine
    form in [my$p] exists) and one-owner/all-consumer sections into
    broadcasts (instantiation of the delayed RSDs; paper Section 5.4,
    Figure 11). *)

open Fd_support
open Fd_frontend
open Fd_machine

type other_dim =
  | Od_point of Ast.expr             (** single index expression *)
  | Od_range of Ast.expr * Ast.expr  (** contiguous index range *)
  | Od_full of int * int             (** whole declared extent *)

val other_dim_section : other_dim -> Ast.expr * Ast.expr * Ast.expr

val assemble_section :
  rank:int -> dim:int -> Ast.expr * Ast.expr * Ast.expr -> other_dim list ->
  Node.section
(** Insert the distributed dimension's triplet among the others. *)

val guarded :
  ?loc:Fd_support.Loc.t -> Ast.expr option -> Node.nstmt list -> Node.nstmt list

val emit_section_comm :
  ?loc:Loc.t -> nprocs:int -> tag:int -> array:string -> owned:Iset.t array ->
  dim:int -> rank:int -> need:Iset.t array -> other_dims:other_dim list ->
  unit -> Node.nstmt list
(** Sends before receives (sends are asynchronous), grouped by
    sender-receiver offset so common shift patterns compile to one
    guarded statement each; exact per-processor fallback otherwise.
    Empty when every processor's need is local. *)

val owner_expr : nprocs:int -> Layout.t -> Ast.expr -> Ast.expr
(** Owner arithmetic for an index under a layout (block: division with
    clamp; cyclic: mod). *)

val owner_guard : nprocs:int -> Layout.t -> Ast.expr -> Ast.expr
(** [my$p == owner_expr ...]. *)

val emit_bcast_section :
  ?loc:Loc.t -> nprocs:int -> site:int -> array:string -> layout:Layout.t ->
  dim:int -> index:Ast.expr -> other_dims:other_dim list -> unit -> Node.nstmt

val emit_bcast_scalar : ?loc:Loc.t -> site:int -> root:Ast.expr -> string -> Node.nstmt

val emit_section_comm_multi :
  ?loc:Loc.t -> nprocs:int -> tag:int -> owned:Iset.t array -> dim:int ->
  rank:int -> parts:(string * Iset.t array * other_dim list) list ->
  unit -> Node.nstmt list
(** Like {!emit_section_comm} but several (array, need, other_dims)
    parts aggregate into one message per processor pair (paper Fig. 11
    aggregation). *)
