(** Run-time resolution (paper Figure 3): every processor executes the
    full iteration space in lockstep; ownership of each reference is
    computed at run time (through the [owner$] intrinsic, which consults
    the array's current layout), and each nonlocal access becomes its own
    element message.  This is both the no-interprocedural-information
    baseline strategy and the sound fallback the optimizing code
    generators use for statements outside their recognized patterns. *)

open Fd_frontend
open Fd_machine

type ctx = {
  nprocs : int;
  symtab : Symtab.t;
  is_dist : string -> bool;
      (** may the array be distributed at this point? *)
  fresh_tag : unit -> int;
  fresh_tmp : unit -> string;
}

val compile_assign : ctx -> loc:Fd_support.Loc.t -> Ast.expr -> Ast.expr -> Node.nstmt list

val compile_stmt : ctx -> Ast.stmt -> Node.nstmt list
(** Whole statement trees; IF conditions with distributed reads get
    element broadcasts first, loops run full bounds everywhere. *)
