(* Run-time resolution (paper Figure 3): every processor executes the
   full iteration space in lockstep; ownership of each reference is
   computed at run time, and each nonlocal access becomes its own
   element message.  This is both the no-interprocedural-information
   baseline strategy and the sound fallback the optimizing code
   generators use for statements outside their recognized patterns. *)

open Fd_support
open Fd_frontend
open Fd_machine

let int_e n = Ast.Int_const n
let myp = Fit.myp

type ctx = {
  nprocs : int;
  symtab : Symtab.t;
  (* may the array be distributed at this point? (ownership itself is
     resolved at run time through the owner$ intrinsic) *)
  is_dist : string -> bool;
  fresh_tag : unit -> int;
  fresh_tmp : unit -> string;
}

let owner_of ctx name subs =
  ignore ctx;
  Ast.Funcall ("owner$", Ast.Var name :: subs)

(* Distributed element reads of an expression: (array, layout, subscripts,
   distributed-dim index expression). *)
let dist_reads ctx (e : Ast.expr) : (string * Ast.expr list) list =
  let out = ref [] in
  Ast.iter_exprs_expr
    (fun e' ->
      match e' with
      | Ast.Ref (name, subs) when ctx.is_dist name -> out := (name, subs) :: !out
      | _ -> ())
    e;
  List.rev !out

let elem_section (subs : Ast.expr list) : Node.section =
  List.map (fun s -> (s, s, int_e 1)) subs

(* Compile one assignment with run-time resolution.  [loc] is the source
   statement, stamped on every message the assignment expands into. *)
let compile_assign ctx ~(loc : Loc.t) (lhs : Ast.expr) (rhs : Ast.expr) :
    Node.nstmt list =
  let reads =
    dist_reads ctx rhs
    @ (match lhs with
      | Ast.Ref (_, subs) -> List.concat_map (dist_reads ctx) subs
      | _ -> [])
  in
  match lhs with
  | Ast.Ref (name, subs) when ctx.is_dist name ->
    let o_lhs = ctx.fresh_tmp () in
    let set_o_lhs = Node.N_assign (Ast.Var o_lhs, owner_of ctx name subs) in
    let comms =
      List.concat_map
        (fun (rname, rsubs) ->
          let o_r = ctx.fresh_tmp () in
          let tag = ctx.fresh_tag () in
          [ Node.N_assign (Ast.Var o_r, owner_of ctx rname rsubs);
            Node.N_if
              { cond =
                  Ast.Bin
                    ( Ast.And,
                      Ast.Bin (Ast.Eq, myp, Ast.Var o_r),
                      Ast.Bin (Ast.Ne, Ast.Var o_r, Ast.Var o_lhs) );
                then_ =
                  [ Node.N_send
                      { dest = Ast.Var o_lhs;
                        parts = [ (rname, elem_section rsubs) ]; tag; loc } ];
                else_ = [];
                loc };
            Node.N_if
              { cond =
                  Ast.Bin
                    ( Ast.And,
                      Ast.Bin (Ast.Eq, myp, Ast.Var o_lhs),
                      Ast.Bin (Ast.Ne, Ast.Var o_r, Ast.Var o_lhs) );
                then_ = [ Node.N_recv { src = Ast.Var o_r; tag; loc } ];
                else_ = [];
                loc } ])
        reads
    in
    (set_o_lhs :: comms)
    @ [ Node.N_if
          { cond = Ast.Bin (Ast.Eq, myp, Ast.Var o_lhs);
            then_ = [ Node.N_assign (lhs, rhs) ];
            else_ = [];
            loc } ]
  | _ ->
    (* replicated target: every processor needs the value, so each
       distributed element read is broadcast from its owner *)
    let comms =
      List.map
        (fun (rname, rsubs) ->
          let site = ctx.fresh_tag () in
          Node.N_bcast
            { root = owner_of ctx rname rsubs;
              payload = Node.P_section (rname, elem_section rsubs);
              site; loc })
        reads
    in
    comms @ [ Node.N_assign (lhs, rhs) ]

(* Compile a full statement tree with run-time resolution.  DISTRIBUTE is
   materialized as a physical remap; IF conditions with distributed reads
   get element broadcasts first; loops run their full bounds everywhere. *)
let rec compile_stmt ctx (s : Ast.stmt) : Node.nstmt list =
  let loc = s.Ast.loc in
  match s.Ast.kind with
  | Ast.Assign (lhs, rhs) -> compile_assign ctx ~loc lhs rhs
  | Ast.Do { var; lo; hi; step; body } ->
    [ Node.N_do
        { var; lo; hi; step; body = List.concat_map (compile_stmt ctx) body } ]
  | Ast.If { cond; then_; else_ } ->
    let pre =
      List.map
        (fun (rname, rsubs) ->
          let site = ctx.fresh_tag () in
          Node.N_bcast
            { root = owner_of ctx rname rsubs;
              payload = Node.P_section (rname, elem_section rsubs);
              site; loc })
        (dist_reads ctx cond)
    in
    pre
    @ [ Node.N_if
          { cond;
            then_ = List.concat_map (compile_stmt ctx) then_;
            else_ = List.concat_map (compile_stmt ctx) else_;
            loc } ]
  | Ast.Call (name, args) -> [ Node.N_call (name, args) ]
  | Ast.Align _ -> []
  | Ast.Distribute _ ->
    (* handled by the strategy driver (remap materialization) *)
    []
  | Ast.Return -> [ Node.N_return ]
  | Ast.Print args ->
    let pre =
      List.concat_map
        (fun e ->
          List.map
            (fun (rname, rsubs) ->
              let site = ctx.fresh_tag () in
              Node.N_bcast
                { root = owner_of ctx rname rsubs;
                  payload = Node.P_section (rname, elem_section rsubs);
                  site; loc })
            (dist_reads ctx e))
        args
    in
    pre
    @ [ Node.N_if
          { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
            then_ = [ Node.N_print args ];
            else_ = [];
            loc } ]
