(* Procedure cloning for reaching decompositions (paper Section 5.2,
   Figure 8): call sites of P are partitioned so that all calls in one
   partition provide the same (Appear-filtered) decompositions; each
   partition gets its own clone, giving every array a unique reaching
   decomposition inside each procedure body.

   The transformation works source-to-source: clones are materialized at
   the AST level, then the whole program is re-printed, re-parsed and
   re-checked, which renumbers statement ids consistently.  Cloning
   iterates (callers are processed before callees via the topological
   order) until no procedure needs further splitting. *)

open Fd_support
open Fd_frontend
open Fd_callgraph

module SM = Map.Make (String)
module SS = Set.Make (String)

type result = {
  cp : Sema.checked_program;  (* the cloned program *)
  origin : string SM.t;       (* clone name -> original procedure name *)
  clones_made : int;
}

(* Signature of the decompositions a call site provides to the formals of
   its callee that appear (are referenced/modified) in the callee or its
   descendants. *)
let call_signature (acg : Acg.t) (rd : Reaching_decomps.t)
    (appear : SS.t) (cs : Acg.call_site) : string =
  let caller = Acg.proc acg cs.Acg.caller in
  let lr = Reaching_decomps.local_of rd cs.Acg.caller in
  let fact = Reaching_decomps.fact_before lr cs.Acg.cs_sid in
  let callee = Acg.proc acg cs.Acg.callee in
  let parts =
    List.filter_map
      (fun (formal, actual) ->
        if not (SS.mem formal appear) then None
        else
          match actual with
          | Ast.Var v when Symtab.is_array caller.Acg.cu.Sema.symtab v ->
            let r = Reaching_decomps.get_reaching fact v in
            Some (Fmt.str "%s=%a" formal Decomp.pp_reaching r)
          | _ -> None)
      (List.combine callee.Acg.cu.Sema.unit_.Ast.formals cs.Acg.actuals)
  in
  (* COMMON arrays contribute by identity *)
  let common_parts =
    List.filter_map
      (fun (name, _block) ->
        if SS.mem name appear && Symtab.is_array callee.Acg.cu.Sema.symtab name then
          Some
            (Fmt.str "%s=%a" name Decomp.pp_reaching
               (Reaching_decomps.get_reaching fact name))
        else None)
      (Symtab.commons callee.Acg.cu.Sema.symtab)
  in
  String.concat ";" (parts @ common_parts)

(* Rename the callee of specific call sites (identified by sid) in a
   program, and duplicate a unit under a new name. *)
let rename_calls (program : Ast.program) (target_sids : int list) (new_name : string) :
    Ast.program =
  List.map
    (fun (u : Ast.punit) ->
      { u with
        body =
          Ast.map_stmts
            (fun s ->
              match s.Ast.kind with
              | Ast.Call (_, args) when List.mem s.Ast.sid target_sids ->
                { s with kind = Ast.Call (new_name, args) }
              | _ -> s)
            u.Ast.body })
    program

let duplicate_unit (u : Ast.punit) (new_name : string) : Ast.punit =
  { u with uname = new_name }

(* One cloning step: find the first procedure (in topological order) whose
   call sites partition into more than one signature class; split it.
   Returns None when the program is stable. *)
let step sink (opts : Options.t) (cp : Sema.checked_program) (origin : string SM.t) :
    (Ast.program * string SM.t * int) option =
  let acg = Acg.build cp in
  if Acg.is_recursive acg then Diag.error "recursive programs are not supported";
  let rd = Reaching_decomps.compute ~sink acg in
  let effects = Side_effects.compute acg in
  let program = List.map (fun cu -> cu.Sema.unit_) cp.Sema.units in
  let try_proc pname =
    if String.equal pname cp.Sema.main then None
    else begin
      let sites = Acg.call_sites_to acg pname in
      if List.length sites < 2 then None
      else begin
        let appear =
          Side_effects.appear effects pname
          |> Side_effects.S.elements |> SS.of_list
        in
        let groups =
          Listx.group_by
            ~key:(fun cs -> call_signature acg rd appear cs)
            ~equal_key:String.equal sites
        in
        if List.length groups <= 1 then None
        else if List.length groups > opts.Options.clone_limit then begin
          Diag.warn_to sink
            "procedure %s needs %d clones (limit %d); cloning disabled for it"
            pname (List.length groups) opts.Options.clone_limit;
          None
        end
        else begin
          (* first group keeps the original name; others get clones *)
          let u = (Acg.proc acg pname).Acg.cu.Sema.unit_ in
          let existing_names =
            List.map (fun (x : Ast.punit) -> x.Ast.uname) program
          in
          let base_origin =
            match SM.find_opt pname origin with Some o -> o | None -> pname
          in
          let program', origin', nclones =
            List.fold_left
              (fun (prog, org, i) (_sig, members) ->
                if i = 0 then (prog, org, 1)
                else begin
                  let rec fresh k =
                    let candidate = Fmt.str "%s$%d" pname k in
                    if List.mem candidate existing_names then fresh (k + 1)
                    else candidate
                  in
                  let clone_name = fresh i in
                  let sids = List.map (fun cs -> cs.Acg.cs_sid) members in
                  let prog = rename_calls prog sids clone_name in
                  let prog = prog @ [ duplicate_unit u clone_name ] in
                  (prog, SM.add clone_name base_origin org, i + 1)
                end)
              (program, origin, 0) groups
          in
          Some (program', origin', nclones - 1)
        end
      end
    end
  in
  List.find_map try_proc (Acg.topo_order acg)

(* Re-check a transformed program through print + parse, renumbering
   statement ids consistently. *)
let recheck (program : Ast.program) : Sema.checked_program =
  Sema.check_source (Ast_printer.program_to_string program)

let apply ?(sink = Diag.global) (opts : Options.t) (cp : Sema.checked_program) : result =
  if not opts.Options.enable_cloning then
    { cp; origin = SM.empty; clones_made = 0 }
  else begin
    let rec loop cp origin count steps =
      if steps > 100 then Diag.error "cloning did not converge";
      match step sink opts cp origin with
      | None -> { cp; origin; clones_made = count }
      | Some (program', origin', n) ->
        loop (recheck program') origin' (count + n) (steps + 1)
    in
    loop cp SM.empty 0 0
  end

let origin_of result name =
  match SM.find_opt name result.origin with Some o -> o | None -> name
