(** The totality layer: classify whatever escapes an [fdc] entry point
    and map it onto the documented exit-code table.  With every entry
    point wrapped in {!protect}, the CLI never shows a bare OCaml
    backtrace — diagnostics, simulation failures, and contained crashes
    each render structurally. *)

open Fd_support

type crash = {
  c_pass : string option;
      (** the pass a converted [failwith]/[assert false] site attributed
          itself to; [None] for an unconverted raise *)
  c_loc : Loc.t option;
  c_message : string;
  c_backtrace : string;
}

type outcome =
  | Exit of int  (** the body ran to completion and chose its own code *)
  | Diagnostics of Diag.t list  (** compile diagnostics — exit 2 *)
  | Sim_failed of string  (** structured simulation failure — exit 3 *)
  | Crash of crash  (** contained internal error — exit 4 *)

(** {2 The exit-code table}

    0 success; 1 verification/check/fuzz failure; 2 compile diagnostics;
    3 simulation error; 4 internal compiler crash (cmdliner additionally
    reserves 124/125). *)

val ok : int
val check_failed : int
val compile_failed : int
val sim_failed : int
val crashed : int

val code : outcome -> int

val protect : (unit -> int) -> outcome
(** Run [f], classifying any escape: {!Fd_support.Diag.Compile_errors} /
    {!Fd_support.Diag.Compile_error} become [Diagnostics],
    {!Fd_support.Diag.Internal_error} and any residual exception become
    [Crash] (with backtrace), {!Fd_machine.Scheduler.Sim_error} becomes
    [Sim_failed].  Enables backtrace recording as a side effect. *)

val pp_crash : Format.formatter -> crash -> unit
(** The structured crash report: pass attribution, location, message,
    backtrace, and a reproduction hint. *)

val crash_to_json : crash -> Json.t
