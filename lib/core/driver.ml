(* Top-level driver: the Pipeline passes (parse -> check ->
   interprocedural compile) followed by simulation and verification
   against the sequential reference execution. *)

open Fd_frontend
open Fd_machine

type run_result = {
  stats : Stats.t;
  mismatches : Gather.mismatch list;
  outputs_match : bool;  (* captured PRINT lines equal the sequential run's *)
  seq : Seq_interp.result;
  compiled : Codegen.compiled;
  report : Pass.report;
}

let check_source ?file src = Sema.check_source ?file src

let compile_ctx ?(verify = false) ?tracer (ctx : Pass.ctx) :
    Codegen.compiled * Pass.report =
  let report = Pipeline.run ~verify ?tracer ctx in
  (match Pass.violations report with
  | [] -> ()
  | (pass, msg) :: _ -> Fd_support.Diag.error "pass %s: %s" pass msg);
  (Pass.get_compiled ctx, report)

let compile ?(opts = Options.default) (cp : Sema.checked_program) : Codegen.compiled =
  fst (compile_ctx (Pipeline.of_checked ~opts cp))

let compile_source ?(opts = Options.default) ?file src =
  fst (compile_ctx (Pipeline.of_source ~opts ?file src))

let machine_config ?(machine : Config.t option) (opts : Options.t) : Config.t =
  match machine with
  | Some m -> { m with Config.nprocs = opts.Options.nprocs }
  | None -> Config.ipsc860 ~nprocs:opts.Options.nprocs ()

(* Simulate an already-compiled program; verifies final array contents
   and captured output against the sequential interpreter. *)
let run_compiled ?machine ~(opts : Options.t) ~(report : Pass.report)
    (cp : Sema.checked_program) (compiled : Codegen.compiled) : run_result =
  let config = machine_config ?machine opts in
  let stats, frames = Scheduler.run config compiled.Codegen.program in
  let seq = Seq_interp.run ~config cp in
  let mismatches =
    Gather.compare_results ~nprocs:opts.Options.nprocs seq frames
  in
  let outputs_match = Stats.outputs stats = seq.Seq_interp.outputs in
  { stats; mismatches; outputs_match; seq; compiled; report }

let run ?(opts = Options.default) ?machine ?(verify = false) ?tracer
    (cp : Sema.checked_program) : run_result =
  let compiled, report =
    compile_ctx ~verify ?tracer (Pipeline.of_checked ~opts cp)
  in
  run_compiled ?machine ~opts ~report cp compiled

let run_source ?opts ?machine ?verify ?tracer ?file src =
  run ?opts ?machine ?verify ?tracer (check_source ?file src)

let verified r = r.mismatches = [] && r.outputs_match

(* Parallel-vs-sequential elapsed-time speedup estimate. *)
let speedup r = r.seq.Seq_interp.seq_time /. Stats.elapsed r.stats
