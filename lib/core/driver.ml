(* Top-level driver: the Pipeline passes (parse -> check ->
   interprocedural compile) followed by simulation and verification
   against the sequential reference execution. *)

open Fd_frontend
open Fd_machine

type run_result = {
  stats : Stats.t;
  mismatches : Gather.mismatch list;
  outputs_match : bool;  (* captured PRINT lines equal the sequential run's *)
  seq : Seq_interp.result;
  compiled : Codegen.compiled;
  report : Pass.report;
  partial : string option;
  (* budget-exhaustion reason: the simulation stopped early, [stats] is a
     prefix, and the sequential comparison was skipped *)
}

let check_source ?file ?sink src = Sema.check_source ?file ?sink src

let compile_ctx ?(verify = false) ?tracer (ctx : Pass.ctx) :
    Codegen.compiled * Pass.report =
  let report = Pipeline.run ~verify ?tracer ctx in
  (match Pass.violations report with
  | [] -> ()
  | (pass, msg) :: _ -> Fd_support.Diag.error "pass %s: %s" pass msg);
  (Pass.get_compiled ctx, report)

let compile ?sink ?(opts = Options.default) (cp : Sema.checked_program) :
    Codegen.compiled =
  fst (compile_ctx (Pipeline.of_checked ?sink ~opts cp))

let compile_source ?sink ?(opts = Options.default) ?file src =
  fst (compile_ctx (Pipeline.of_source ?sink ~opts ?file src))

let machine_config ?(machine : Config.t option) (opts : Options.t) : Config.t =
  match machine with
  | Some m -> { m with Config.nprocs = opts.Options.nprocs }
  | None -> Config.ipsc860 ~nprocs:opts.Options.nprocs ()

(* Simulate an already-compiled program; verifies final array contents
   and captured output against the sequential interpreter. *)
let run_compiled ?machine ?budget ~(opts : Options.t) ~(report : Pass.report)
    (cp : Sema.checked_program) (compiled : Codegen.compiled) : run_result =
  let config = machine_config ?machine opts in
  let p = Scheduler.run_partial ?budget config compiled.Codegen.program in
  match p.Scheduler.p_frames with
  | Some frames ->
    let seq = Seq_interp.run ~config cp in
    let mismatches =
      Gather.compare_results ~nprocs:opts.Options.nprocs seq frames
    in
    let outputs_match =
      Stats.outputs p.Scheduler.p_stats = seq.Seq_interp.outputs
    in
    { stats = p.Scheduler.p_stats; mismatches; outputs_match; seq; compiled;
      report; partial = p.Scheduler.p_exhausted }
  | None ->
    (* budget exhausted mid-simulation: report the stats prefix and skip
       the sequential comparison (no final frames to compare) *)
    let seq =
      { Seq_interp.arrays = []; outputs = []; flops = 0; mem_ops = 0;
        seq_time = 0. }
    in
    { stats = p.Scheduler.p_stats; mismatches = []; outputs_match = true; seq;
      compiled; report; partial = p.Scheduler.p_exhausted }

let run ?sink ?(opts = Options.default) ?machine ?(verify = false) ?tracer
    ?budget (cp : Sema.checked_program) : run_result =
  let compiled, report =
    compile_ctx ~verify ?tracer (Pipeline.of_checked ?sink ~opts cp)
  in
  run_compiled ?machine ?budget ~opts ~report cp compiled

let run_source ?sink ?opts ?machine ?verify ?tracer ?budget ?file src =
  run ?sink ?opts ?machine ?verify ?tracer ?budget (check_source ?file ?sink src)

let verified r = r.mismatches = [] && r.outputs_match

(* Parallel-vs-sequential elapsed-time speedup estimate. *)
let speedup r = r.seq.Seq_interp.seq_time /. Stats.elapsed r.stats
