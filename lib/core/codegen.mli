(** Interprocedural code generation (paper Section 5, Figures 9/11/13/17).

    Procedures are compiled exactly once, in reverse topological order
    over the augmented call graph.  Each compilation consumes the exports
    of its callees (computation-partition constraints, delayed
    communication, delayed remapping) and produces its own export record
    for callers.  The [Interproc] and [Immediate] strategies share this
    module; statements outside the recognized patterns fall back to
    run-time resolution locally, which is always sound. *)

open Fd_frontend
open Fd_callgraph
open Fd_machine

type state = {
  opts : Options.t;
  sink : Fd_support.Diag.sink;  (** per-run diagnostics (warnings) *)
  acg : Acg.t;
  rd : Reaching_decomps.t;
  effects : Side_effects.t;
  mutable counter : int;  (** fresh communication tags / sites *)
  exports : (string, Exports.t) Hashtbl.t;
  mutable remap_stats : (string * Dynamic_decomp.opt_stats) list;
  mutable partition_log : (string * string) list;
      (** (procedure, loop-partition decision), in compilation order *)
}

val export_of : state -> string -> Exports.t

val compile_proc : state -> Sema.checked_unit -> Node.nproc
(** One procedure under [Interproc]/[Immediate]; records its export. *)

val compile_proc_runtime_res : state -> Sema.checked_unit -> Node.nproc

type compiled = {
  program : Node.program;
  cloned : Sema.checked_program;  (** the program after cloning *)
  clone_result : Cloning.result;
  state : state;
}

val clone :
  ?sink:Fd_support.Diag.sink -> Options.t -> Sema.checked_program -> Cloning.result
(** The cloning phase: {!Cloning.apply} for the optimizing strategies, a
    trivial (identity) result under [Runtime_resolution]. *)

val build_acg : Sema.checked_program -> Acg.t
(** Build the augmented call graph of the (cloned) program.
    @raise Fd_support.Diag.Compile_error on recursion. *)

val compile_analyzed :
  ?sink:Fd_support.Diag.sink ->
  Options.t ->
  clone_result:Cloning.result ->
  acg:Acg.t ->
  rd:Reaching_decomps.t ->
  effects:Side_effects.t ->
  compiled
(** Per-procedure code generation over already-computed analyses (the
    final pipeline pass): aliasing check, then one pass per procedure in
    reverse topological order.
    @raise Fd_support.Diag.Compile_error on forbidden aliasing or
    uninstantiable computation partitions. *)

val compile :
  ?sink:Fd_support.Diag.sink -> Options.t -> Sema.checked_program -> compiled
(** Whole-program compilation: cloning (for the optimizing strategies),
    analyses, aliasing check, then one pass per procedure in reverse
    topological order.  Equivalent to running the {!Pipeline} passes
    [cloning] through [codegen] in order.
    @raise Fd_support.Diag.Compile_error on recursion, forbidden
    aliasing, or uninstantiable computation partitions. *)
