(** Reaching decompositions (paper Section 5.2, Figure 6).

    Local phase: forward dataflow over each procedure's CFG computing, at
    every point, the set of decompositions reaching each array
    (ALIGN/DISTRIBUTE act as definitions; formal arrays start at the >
    "inherited" placeholder).  Interprocedural phase: one top-down pass in
    topological order computes Reaching(P) by translating call-site facts
    (actuals to formals), then expands the local placeholders. *)

open Fd_frontend
open Fd_callgraph

module SM : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type fact = Decomp.reaching SM.t

val fact_join : fact -> fact -> fact
val fact_equal : fact -> fact -> bool
val get_reaching : fact -> string -> Decomp.reaching

val align_map :
  ?sink:Fd_support.Diag.sink ->
  Sema.checked_unit ->
  (string * Ast.align_sub list) SM.t
(** Static alignment map: array -> (target, subscripts); the last ALIGN
    per array wins, with a warning when several disagree. *)

val initial_fact : Sema.checked_unit -> fact

type local_result
(** The solved local problem for one procedure (with inherited
    decompositions seeded after interprocedural propagation). *)

val solve_local :
  ?sink:Fd_support.Diag.sink -> ?seed:fact -> Sema.checked_unit -> local_result

val aligns_of : local_result -> (string * Ast.align_sub list) SM.t

val fact_before : local_result -> int -> fact
(** Fact at the program point before the statement with the given id. *)

val fact_at_exit : local_result -> fact

type t

val compute : ?sink:Fd_support.Diag.sink -> Acg.t -> t

val reaching_of : t -> string -> fact
(** Reaching(P): decompositions inherited by each formal array. *)

val local_of : t -> string -> local_result

val unique_at : t -> string -> int -> string -> Decomp.t option
(** The single decomposition of an array at a point; errors when several
    reach (cloning should have made it unique). *)

val maybe_distributed : t -> string -> int -> string -> bool
(** Tolerant variant used by run-time resolution: may the array be
    non-replicated here? *)

val pp_proc_reaching : Format.formatter -> t * string -> unit
