(* Data decompositions as they reach references: one distribution kind
   per array dimension.  This compiler supports at most one distributed
   dimension per array (a 1-D logical processor arrangement), which covers
   every example in the paper; richer processor grids would require
   multi-dimensional ownership sets (see DESIGN.md). *)

open Fd_support
open Fd_frontend

type t = { kinds : Ast.dist_kind list }

let replicated rank = { kinds = List.init rank (fun _ -> Ast.Star) }

let of_kinds kinds = { kinds }

let rank t = List.length t.kinds

let is_replicated t = List.for_all (fun k -> k = Ast.Star) t.kinds

(* The unique distributed dimension (0-based) and its kind. *)
let dist_dim t : (int * Ast.dist_kind) option =
  let dims =
    List.mapi (fun i k -> (i, k)) t.kinds
    |> List.filter (fun (_, k) -> k <> Ast.Star)
  in
  match dims with
  | [] -> None
  | [ d ] -> Some d
  | _ :: _ ->
    Diag.error
      "multi-dimensional distributions are not supported (at most one distributed dimension)"

let equal a b = a.kinds = b.kinds

let compare a b = Stdlib.compare a.kinds b.kinds

(* Convert to a machine layout for an array with the given bounds. *)
let layout_of t ~(bounds : (int * int) list) ~nprocs : Fd_machine.Layout.t =
  if List.length bounds <> rank t then
    Diag.error "decomposition rank %d does not match array rank %d" (rank t)
      (List.length bounds);
  match dist_dim t with
  | None -> Fd_machine.Layout.replicated bounds
  | Some (d, kind) ->
    let dim_bounds = List.nth bounds d in
    let dist =
      match kind with
      | Ast.Block ->
        Fd_machine.Layout.Block (Fd_machine.Layout.block_size_for ~nprocs dim_bounds)
      | Ast.Cyclic -> Fd_machine.Layout.Cyclic
      | Ast.Block_cyclic k -> Fd_machine.Layout.Block_cyclic k
      | Ast.Star ->
        Diag.internal ~pass:"analysis" "DISTRIBUTE * dimension marked distributed"
    in
    { Fd_machine.Layout.bounds; dist_dim = Some d; dist }

(* Apply an alignment: [subs] maps target (decomposition) dimensions to
   aligned-array dimensions; the array inherits, in each of its own
   dimensions, the distribution of the target dimension it is aligned
   with.  Constant-aligned target dimensions contribute nothing.  Nonzero
   offsets are accepted but only shift block boundaries, which this
   compiler ignores (a warning is emitted at ALIGN checking time). *)
let through_align ~(array_rank : int) (subs : Ast.align_sub list) (target : t) : t =
  let kinds = Array.make array_rank Ast.Star in
  List.iteri
    (fun target_dim sub ->
      match sub with
      | Ast.Align_const _ -> ()
      | Ast.Align_dim (array_dim, _offset) ->
        if array_dim < array_rank then
          kinds.(array_dim) <- List.nth target.kinds target_dim)
    subs;
  { kinds = Array.to_list kinds }

let kind_name = function
  | Ast.Block -> "block"
  | Ast.Cyclic -> "cyclic"
  | Ast.Block_cyclic k -> Fmt.str "block_cyclic(%d)" k
  | Ast.Star -> ":"

let pp ppf t = Fmt.pf ppf "(%s)" (String.concat "," (List.map kind_name t.kinds))

let to_string t = Fmt.str "%a" pp t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

(* A reaching-decompositions lattice value: a set of decompositions plus
   the paper's > ("inherited from caller") placeholder. *)
type reaching = { decomps : Set.t; top : bool }

let reaching_bottom = { decomps = Set.empty; top = false }
let reaching_top = { decomps = Set.empty; top = true }
let reaching_single d = { decomps = Set.singleton d; top = false }

let reaching_join a b = { decomps = Set.union a.decomps b.decomps; top = a.top || b.top }

let reaching_equal a b = Set.equal a.decomps b.decomps && a.top = b.top

let pp_reaching ppf r =
  let elems = List.map to_string (Set.elements r.decomps) in
  let elems = if r.top then "TOP" :: elems else elems in
  Fmt.pf ppf "{%s}" (String.concat ", " elems)
