(** The pass-manager substrate: a shared pipeline context threaded
    through the compiler's interprocedural phases, plus the typed
    description of one pass (name, run function, artifact
    pretty-printer, invariant checker, size metric).

    The compiler's phases — parse, semantic checking, procedure cloning,
    augmented-call-graph construction, reaching decompositions, side
    effects, local summaries, code generation — each populate one field
    of {!ctx}.  A pass's [p_run] is idempotent: it does nothing when its
    artifact is already present, which is how contexts seeded from a
    {!Fd_frontend.Sema.checked_program} skip the frontend passes.

    {!Pipeline} owns the standard pass list and the runner. *)

open Fd_frontend
open Fd_callgraph

type ctx = {
  opts : Options.t;
  sink : Fd_support.Diag.sink;
      (** per-run diagnostic sink: frontend passes accumulate (recovered)
          errors here before [sema] raises them as one batch; backend
          passes record warnings *)
  file : string option;
  source : string option;  (** absent when seeded from a checked program *)
  mutable parsed : Ast.program option;
  mutable checked : Sema.checked_program option;
  mutable clone_result : Cloning.result option;
  mutable acg : Acg.t option;
  mutable rd : Reaching_decomps.t option;
  mutable effects : Side_effects.t option;
  mutable summaries : (string * Local_summary.t) list option;
      (** one local summary per (cloned) procedure, in ACG order *)
  mutable compiled : Codegen.compiled option;
  mutable findings : Fd_verify.Finding.t list option;
      (** static-verifier findings over the compiled program; computed
          lazily by the [verify] pass and cached here *)
  mutable cost : Fd_verify.Cost.t option;
      (** static communication-cost prediction over the compiled
          program; computed lazily by the [cost] pass and cached here *)
}

(** Result of a pass's invariant checker in a {!report}. *)
type status =
  | I_not_checked  (** the run did not request verification *)
  | I_ok
  | I_violated of string list  (** human-readable violation messages *)

type entry = {
  e_pass : string;
  e_time : float;  (** wall-clock seconds spent in the pass's run *)
  e_size : int;    (** pass-specific artifact size metric *)
  e_status : status;
}

type report = entry list
(** One entry per executed pass, in execution order. *)

type t = {
  p_name : string;
  p_doc : string;
  p_run : ctx -> unit;
  p_dump : ctx -> string option;
      (** render the pass's artifact; [None] when it is not present *)
  p_verify : ctx -> string list;
      (** invariant violations over the current context; [[]] = ok *)
  p_size : ctx -> int;
}

(** {2 Artifact accessors}

    Each raises {!Fd_support.Diag.Compile_error} naming the missing pass
    when the artifact has not been produced yet. *)

val get_parsed : ctx -> Ast.program
val get_checked : ctx -> Sema.checked_program
val get_clone_result : ctx -> Cloning.result
val get_acg : ctx -> Acg.t
val get_rd : ctx -> Reaching_decomps.t
val get_effects : ctx -> Side_effects.t
val get_summaries : ctx -> (string * Local_summary.t) list
val get_compiled : ctx -> Codegen.compiled

val report_ok : report -> bool
(** No entry is [I_violated]. *)

val violations : report -> (string * string) list
(** All (pass, message) violation pairs, in report order. *)

val pp_entry : Format.formatter -> entry -> unit
