(** Top-level driver: the {!Pipeline} passes (parse -> check ->
    interprocedural compile) followed by simulation and verification
    against the sequential reference execution. *)

open Fd_frontend
open Fd_machine

type run_result = {
  stats : Stats.t;
  mismatches : Gather.mismatch list;
  outputs_match : bool;
      (** captured PRINT lines equal the sequential run's *)
  seq : Seq_interp.result;
  compiled : Codegen.compiled;
  report : Pass.report;
      (** per-pass wall-clock time, artifact sizes and (when requested)
          invariant results for the compile *)
  partial : string option;
      (** budget-exhaustion reason: when set, the simulation stopped
          early, [stats] is a prefix, and the sequential comparison was
          skipped ([mismatches = []], [outputs_match = true], [seq]
          empty) *)
}

val check_source :
  ?file:string -> ?sink:Fd_support.Diag.sink -> string -> Sema.checked_program

val compile_ctx :
  ?verify:bool -> ?tracer:Fd_trace.Trace.t -> Pass.ctx ->
  Codegen.compiled * Pass.report
(** Run the whole pipeline over a context.  With [verify], the first
    invariant violation raises {!Fd_support.Diag.Compile_error}.  A
    [tracer] receives one pass span per pipeline pass. *)

val compile :
  ?sink:Fd_support.Diag.sink -> ?opts:Options.t -> Sema.checked_program ->
  Codegen.compiled

val compile_source :
  ?sink:Fd_support.Diag.sink -> ?opts:Options.t -> ?file:string -> string ->
  Codegen.compiled

val machine_config : ?machine:Config.t -> Options.t -> Config.t

val run :
  ?sink:Fd_support.Diag.sink -> ?opts:Options.t -> ?machine:Config.t ->
  ?verify:bool -> ?tracer:Fd_trace.Trace.t -> ?budget:Fd_support.Budget.t ->
  Sema.checked_program -> run_result
(** Compile, simulate, and compare final array contents and captured
    output against the sequential interpreter.  [verify] additionally
    runs every pass's invariant checker during the compile.  [tracer]
    collects compiler pass spans; to also collect machine events, pass a
    [machine] config whose [trace] field holds the same trace. *)

val run_source :
  ?sink:Fd_support.Diag.sink -> ?opts:Options.t -> ?machine:Config.t ->
  ?verify:bool -> ?tracer:Fd_trace.Trace.t -> ?budget:Fd_support.Budget.t ->
  ?file:string -> string -> run_result

val verified : run_result -> bool
(** No array mismatches and identical PRINT output. *)

val speedup : run_result -> float
(** Estimated sequential time divided by simulated parallel makespan. *)
