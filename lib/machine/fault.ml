(* Deterministic, seed-driven fault plans.  All randomness is a pure
   hash of (seed, src, dest, tag, seq, purpose): the schedule does not
   depend on event-processing order, so identical seeds reproduce
   identical fault schedules and identical Stats. *)

type t = {
  seed : int;
  drop : float;
  dup : float;
  delay : float;
  reorder : float;
  slowdown : (int * float) list;
  rto : float;
  backoff : float;
  max_retries : int;
  watchdog : float option;
  tags : int list option;
  srcs : int list option;
  dests : int list option;
}

let make ?(drop = 0.0) ?(dup = 0.0) ?(delay = 0.0) ?(reorder = 0.0)
    ?(slowdown = []) ?(rto = 500e-6) ?(backoff = 2.0) ?(max_retries = 8)
    ?watchdog ?tags ?srcs ?dests ~seed () =
  if drop < 0.0 || drop > 1.0 then Fd_support.Diag.error "fault plan: drop not in [0,1]";
  if dup < 0.0 || dup > 1.0 then Fd_support.Diag.error "fault plan: dup not in [0,1]";
  if reorder < 0.0 || reorder > 1.0 then
    Fd_support.Diag.error "fault plan: reorder not in [0,1]";
  if delay < 0.0 then Fd_support.Diag.error "fault plan: negative delay";
  if rto <= 0.0 then Fd_support.Diag.error "fault plan: rto must be positive";
  if backoff < 1.0 then Fd_support.Diag.error "fault plan: backoff must be >= 1";
  if max_retries < 0 then Fd_support.Diag.error "fault plan: negative max_retries";
  { seed; drop; dup; delay; reorder; slowdown; rto; backoff; max_retries;
    watchdog; tags; srcs; dests }

let member_opt x = function None -> true | Some xs -> List.mem x xs

let selects t ~src ~dest ~tag =
  member_opt tag t.tags && member_opt src t.srcs && member_opt dest t.dests

let slowdown_for t p =
  match List.assoc_opt p t.slowdown with Some f -> f | None -> 1.0

(* --- splitmix64-style hashing ------------------------------------------ *)

let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* A stream is a mixed digest of the seed and the message key; draws are
   indexed, so every (purpose, index) pair is an independent uniform. *)
let stream seed components =
  List.fold_left
    (fun s c -> mix64 Int64.(add (logxor s (of_int c)) golden))
    (mix64 (Int64.add (Int64.of_int seed) golden))
    components

let draw st n = mix64 Int64.(add st (mul golden (of_int (n + 1))))

(* 53 uniform bits -> [0, 1) *)
let to01 z = Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let uniform st n = to01 (draw st n)

(* purpose salts keep the drop / dup / delay / reorder streams disjoint *)
let salt_drop = 1
let salt_dup = 2
let salt_delay = 3
let salt_reorder = 4

type delivery = {
  attempts : int;
  lost : bool;
  added_delay : float;
  duplicated : bool;
  injected : int;
}

let clean = { attempts = 1; lost = false; added_delay = 0.0; duplicated = false;
              injected = 0 }

let deliver t ~msg_cost ~src ~dest ~tag ~seq =
  if not (selects t ~src ~dest ~tag) then clean
  else begin
    let key purpose = stream t.seed [ src; dest; tag; seq; purpose ] in
    let injected = ref 0 in
    (* Ack/retransmit: attempt i goes out rto * backoff^(i-1) after
       attempt i-1; the first surviving attempt delivers. *)
    let max_attempts = t.max_retries + 1 in
    let drops = key salt_drop in
    let rec attempt i timeout_sum =
      if i > max_attempts then (max_attempts, true, 0.0)
      else if t.drop > 0.0 && uniform drops i < t.drop then begin
        incr injected;
        attempt (i + 1) (timeout_sum +. (t.rto *. (t.backoff ** float_of_int (i - 1))))
      end
      else (i, false, timeout_sum)
    in
    let attempts, lost, retry_delay = attempt 1 0.0 in
    if lost then
      { attempts; lost = true; added_delay = 0.0; duplicated = false;
        injected = !injected }
    else begin
      let jitter =
        if t.delay > 0.0 then begin
          incr injected;
          uniform (key salt_delay) 0 *. t.delay
        end
        else 0.0
      in
      let reorder_pen =
        if t.reorder > 0.0 && uniform (key salt_reorder) 0 < t.reorder then begin
          incr injected;
          msg_cost
        end
        else 0.0
      in
      let duplicated =
        t.dup > 0.0 && uniform (key salt_dup) 0 < t.dup
      in
      if duplicated then incr injected;
      { attempts; lost = false;
        added_delay = retry_delay +. jitter +. reorder_pen;
        duplicated; injected = !injected }
    end
  end

let pp ppf t =
  Fmt.pf ppf
    "faults seed=%d drop=%.2f dup=%.2f delay=%.0fus reorder=%.2f rto=%.0fus x%.1f max_retries=%d"
    t.seed t.drop t.dup (t.delay *. 1e6) t.reorder (t.rto *. 1e6) t.backoff
    t.max_retries
