(** Typed section messages exchanged by node programs. *)

type t = {
  src : int;
  dest : int;
  tag : int;            (** static communication-site id *)
  seq : int;
      (** monotone per-(src, dest, tag) sequence number stamped by the
          scheduler's network layer (senders pass 0); receivers dedup
          duplicates and reassemble in seq order *)
  elems : (string * int array * Value.t) list;
      (** (array, global index vector, value); one message may aggregate
          sections of several arrays (paper Fig. 11 aggregation) *)
  bytes : int;
}

val nelems : t -> int

val arrays : t -> string list

val pp : Format.formatter -> t -> unit
