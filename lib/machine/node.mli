(** The SPMD node-program IR produced by the Fortran D compiler back ends
    and executed by the simulator.

    Expressions reuse {!Fd_frontend.Ast.expr}; on top of the sequential
    statement forms the IR adds explicit message passing (guarded
    send/recv of array sections, broadcast) and dynamic remapping.  All
    index expressions are in *global* index space; each array carries a
    {!Layout.t} mapping indices to owners (DESIGN.md section 6). *)

open Fd_support
open Fd_frontend

type section = (Ast.expr * Ast.expr * Ast.expr) list
(** Per-dimension (lo, hi, step) in global index space; expressions may
    reference [my$p], loop variables, and node-program scalars. *)

type payload =
  | P_section of string * section
  | P_scalar of string

type nstmt =
  | N_assign of Ast.expr * Ast.expr
  | N_do of { var : string; lo : Ast.expr; hi : Ast.expr; step : Ast.expr option;
              body : nstmt list }
  | N_if of { cond : Ast.expr; then_ : nstmt list; else_ : nstmt list;
              loc : Loc.t }
      (** [loc] is the source IF statement when one exists ([Loc.none]
          for compiler-introduced guards); branch-profile consumers key
          on it *)
  | N_call of string * Ast.expr list
  | N_send of { dest : Ast.expr; parts : (string * section) list; tag : int;
                loc : Loc.t }
      (** one message; [parts] may aggregate sections of several arrays;
          [loc] is the Fortran D source statement the message implements *)
  | N_recv of { src : Ast.expr; tag : int; loc : Loc.t }
      (** the message itself carries the section to store *)
  | N_bcast of { root : Ast.expr; payload : payload; site : int; loc : Loc.t }
      (** collective: all processors must reach the same site *)
  | N_remap of { array : string; new_layout : Layout.t; move : bool; site : int;
                 loc : Loc.t }
      (** collective redistribution; [move = false] marks only (the
          array-kill optimization) *)
  | N_print of Ast.expr list
  | N_return

type array_decl = {
  ad_name : string;
  ad_elt : Ast.dtype;
  ad_layout : Layout.t;  (** initial layout *)
}

type nproc = {
  np_name : string;
  np_formals : string list;
  np_arrays : array_decl list;
  np_scalars : (string * Ast.dtype) list;
  np_body : nstmt list;
}

type program = {
  n_procs : nproc list;
  n_main : string;
  n_nprocs : int;  (** the P the program was compiled for *)
  n_common_arrays : array_decl list;  (** COMMON storage, program-wide *)
  n_common_scalars : (string * Ast.dtype) list;
}

val find_proc : program -> string -> nproc option
val find_array : nproc -> string -> array_decl option

val map_exprs : (Ast.expr -> Ast.expr) -> nstmt -> nstmt
(** Rewrite every expression in a statement tree (e.g. PARAMETER
    folding). *)

val pp_section : Format.formatter -> section -> unit
val pp_nstmt : int -> Format.formatter -> nstmt -> unit
val pp_nproc : Format.formatter -> nproc -> unit
val pp_program : Format.formatter -> program -> unit
val program_to_string : program -> string
