(* Virtual-time scheduler for the processor ensemble.

   Each logical processor runs as a delimited computation (via OCaml 5
   effect handlers).  A processor runs until it finishes or blocks on a
   receive / collective; sends are asynchronous (infinite buffering, the
   iPSC model) and carry an arrival timestamp of
   [sender_clock + alpha + beta * bytes].  A blocking receive advances the
   receiver's clock to [max(own clock, arrival)].  Collectives
   (broadcast, remap) synchronize all P processors at a site, advance
   everyone to the ensemble maximum plus the collective's cost, and
   perform the global data movement.

   Resilient protocol: every message is stamped with a monotone
   per-(src, dest, tag) sequence number by the network layer.  Under a
   {!Fault} plan, transmissions may be dropped (recovered by an
   ack/retransmit loop with virtual-time timeouts and exponential
   backoff, the recovery latency charged to the arrival time), duplicated
   (deduped on the sequence number), or delayed; receivers reassemble in
   seq order from a per-channel buffer.  A message still undeliverable
   after [max_retries] retransmissions is declared lost and the run
   terminates with a structured {!Deadlock} carrying the wait-for graph,
   never a hang. *)

open Fd_support
open Effect.Deep

type blocked_on =
  | On_recv of { src : int; tag : int; loc : Loc.t }
  | On_collective of { site : int; label : string; loc : Loc.t }

type waiter = { w_proc : int; w_on : blocked_on; w_clock : float }

type lost_msg = { l_src : int; l_dest : int; l_tag : int; l_seq : int;
                  l_attempts : int }

type wait_for = {
  waiting : waiter list;
  cycle : int list;
  lost : lost_msg list;
}

type error =
  | Deadlock of wait_for
  | Watchdog of { proc : int; clock : float; limit : float }
  | Invalid_read of { proc : int; array : string; index : int array;
                      clock : float }
  | Runtime_error of string

exception Sim_error of error

let pp_loc_suffix ppf (loc : Loc.t) =
  if loc <> Loc.none then Fmt.pf ppf " [%a]" Loc.pp loc

let pp_blocked_on ppf = function
  | On_recv { src; tag; loc } ->
    Fmt.pf ppf "recv from p%d tag %d%a" src tag pp_loc_suffix loc
  | On_collective { site; label; loc } ->
    Fmt.pf ppf "collective site %d (%s)%a" site label pp_loc_suffix loc

let pp_waiter ppf w =
  Fmt.pf ppf "p%d blocked on %a at t=%.1fus" w.w_proc pp_blocked_on w.w_on
    (w.w_clock *. 1e6)

let pp_lost ppf l =
  Fmt.pf ppf "p%d -> p%d tag %d seq %d lost after %d attempts" l.l_src l.l_dest
    l.l_tag l.l_seq l.l_attempts

let error_to_string = function
  | Deadlock wf ->
    let parts =
      List.map (Fmt.str "%a" pp_waiter) wf.waiting
      @ (match wf.cycle with
        | [] -> []
        | c ->
          [ Fmt.str "wait cycle: %s"
              (String.concat " -> "
                 (List.map (Fmt.str "p%d") (c @ [ List.hd c ]))) ])
      @ List.map (Fmt.str "%a" pp_lost) wf.lost
    in
    "deadlock: " ^ String.concat "; " parts
  | Watchdog { proc; clock; limit } ->
    Fmt.str
      "watchdog: p%d exceeded the virtual-time limit (%.1fus > %.1fus); \
       livelock or unrecoverable message loss"
      proc (clock *. 1e6) (limit *. 1e6)
  | Invalid_read { proc; array; index; clock } ->
    Fmt.str
      "strict-validity violation: p%d read non-owned, never-received element \
       %s(%s) at t=%.1fus: missing communication"
      proc array
      (String.concat "," (Array.to_list (Array.map string_of_int index)))
      (clock *. 1e6)
  | Runtime_error s -> "runtime error: " ^ s

type outcome =
  | O_done of Interp.frame
  | O_blocked_recv of { src : int; tag : int; loc : Loc.t;
                        k : (Message.t, outcome) continuation }
  | O_blocked_coll of { site : int; op : Eff.coll_op; loc : Loc.t;
                        k : (unit, outcome) continuation }

(* Per-(src, dest, tag) channel: the sender side stamps [send_seq]; the
   receiver side delivers strictly in seq order from [pending], which
   holds arrived-but-undelivered messages keyed by seq (a reassembly
   buffer: retransmitted messages can arrive out of order). *)
type chan = {
  mutable send_seq : int;
  mutable deliver_seq : int;
  pending : (int, Message.t * float) Hashtbl.t;  (* seq -> (msg, arrival) *)
}

type t = {
  config : Config.t;
  stats : Stats.t;
  channels : (int * int * int, chan) Hashtbl.t;  (* (src, dest, tag) *)
  parked : (int, int * int * Loc.t * (Message.t, outcome) continuation) Hashtbl.t;
  (* blocked receivers: proc -> (src, tag, source loc, continuation) *)
  colls :
    (int, (int * Eff.coll_op * Loc.t * (unit, outcome) continuation) list ref)
      Hashtbl.t;
  runq : (int * (unit -> outcome)) Queue.t;
  final_frames : Interp.frame option array;
  mutable lost : lost_msg list;  (* permanently undeliverable, reversed *)
  budget : Budget.state option;
}

(* Raised by the budget ticks below; caught only by [run_partial], which
   turns it into a partial result. *)
exception Budget_stop of string

let create ?budget config =
  { config;
    stats = Stats.create config.Config.nprocs;
    channels = Hashtbl.create 64;
    parked = Hashtbl.create 8;
    colls = Hashtbl.create 8;
    runq = Queue.create ();
    final_frames = Array.make config.Config.nprocs None;
    lost = [];
    budget }

let charge_step t =
  match t.budget with
  | Some b when not (Budget.tick_step b 1) ->
    raise (Budget_stop (Option.value ~default:"budget exhausted" (Budget.exhausted b)))
  | _ -> ()

let charge_event t =
  match t.budget with
  | Some b when not (Budget.tick_event b 1) ->
    raise (Budget_stop (Option.value ~default:"budget exhausted" (Budget.exhausted b)))
  | _ -> ()

let channel t key =
  match Hashtbl.find_opt t.channels key with
  | Some c -> c
  | None ->
    let c = { send_seq = 0; deliver_seq = 0; pending = Hashtbl.create 4 } in
    Hashtbl.replace t.channels key c;
    c

let record t ev =
  if t.config.Config.record_trace then t.stats.Stats.trace <- ev :: t.stats.Stats.trace

(* Structured-event sink (Fd_trace).  Producers go through this module
   alias and an inline option match at each site, so a [None] trace costs
   one load + branch and allocates nothing. *)
module Tr = Fd_trace.Trace

(* Advance processor [p]'s clock to [clock], enforcing the virtual-time
   watchdog: a runaway or livelocked run becomes a diagnosable timeout. *)
let set_clock t p clock =
  charge_step t;
  t.stats.Stats.clocks.(p) <- clock;
  match t.config.Config.faults with
  | Some { Fault.watchdog = Some limit; _ } when clock > limit ->
    t.stats.Stats.watchdog_fired <- true;
    raise (Sim_error (Watchdog { proc = p; clock; limit }))
  | _ -> ()

let slowdown t p =
  match t.config.Config.faults with
  | Some plan -> Fault.slowdown_for plan p
  | None -> 1.0

(* Deliver the next in-order message on [ch], if it has arrived. *)
let take_deliverable ch =
  match Hashtbl.find_opt ch.pending ch.deliver_seq with
  | Some (msg, arrival) ->
    Hashtbl.remove ch.pending ch.deliver_seq;
    ch.deliver_seq <- ch.deliver_seq + 1;
    Some (msg, arrival)
  | None -> None

let accept_recv t p ~src ~tag (msg, arrival) =
  let before = t.stats.Stats.clocks.(p) in
  set_clock t p (Float.max before arrival);
  let waited = Float.max 0.0 (arrival -. before) in
  t.stats.Stats.max_wait <- Float.max t.stats.Stats.max_wait waited;
  record t
    (Stats.Ev_recv { at = t.stats.Stats.clocks.(p); src; dest = p; tag; waited });
  (match t.config.Config.trace with
  | Some tr ->
    Tr.emit tr ~kind:Tr.Recv ~at:t.stats.Stats.clocks.(p) ~proc:p ~peer:src ~tag
      ~seq:msg.Message.seq ~bytes:msg.Message.bytes ~dur:waited ()
  | None -> ());
  msg

let resume_recv t p src tag loc k : unit -> outcome =
  fun () ->
    let ch = channel t (src, p, tag) in
    match take_deliverable ch with
    | Some delivery -> continue k (accept_recv t p ~src ~tag delivery)
    | None ->
      (* woken spuriously; repark *)
      O_blocked_recv { src; tag; loc; k }

(* Insert an arrived copy into the reassembly buffer, dropping
   duplicates by sequence number; wakes a parked receiver when the copy
   is the one it can deliver next. *)
let insert_arrival t (msg : Message.t) arrival =
  let src = msg.Message.src and dest = msg.Message.dest and tag = msg.Message.tag in
  let ch = channel t (src, dest, tag) in
  if msg.Message.seq < ch.deliver_seq || Hashtbl.mem ch.pending msg.Message.seq
  then begin
    t.stats.Stats.duplicates_dropped <- t.stats.Stats.duplicates_dropped + 1;
    record t
      (Stats.Ev_fault
         { at = arrival; src; dest; tag; seq = msg.Message.seq; kind = "duplicate" });
    match t.config.Config.trace with
    | Some tr ->
      Tr.emit tr ~kind:Tr.Dedup ~at:arrival ~proc:dest ~peer:src ~tag
        ~seq:msg.Message.seq ()
    | None -> ()
  end
  else begin
    Hashtbl.replace ch.pending msg.Message.seq (msg, arrival);
    if msg.Message.seq = ch.deliver_seq then
      match Hashtbl.find_opt t.parked dest with
      | Some (src', tag', loc', krecv) when src' = src && tag' = tag ->
        Hashtbl.remove t.parked dest;
        (match t.config.Config.trace with
        | Some tr ->
          Tr.emit tr ~kind:Tr.Wake ~at:arrival ~proc:dest ~peer:src ~tag
            ~seq:msg.Message.seq ()
        | None -> ());
        Queue.add (dest, resume_recv t dest src' tag' loc' krecv) t.runq
      | _ -> ()
  end

(* The network layer: stamp the sequence number, price the send, decide
   the message's fate under the fault plan, and enqueue the arrival(s).
   Recovery latency (retransmit timeouts, jitter, reorder penalties) is
   charged to the arrival time, so receive waits — and therefore Stats —
   honestly reflect the degraded network. *)
let transmit t p (msg : Message.t) =
  charge_event t;
  let ch = channel t (msg.Message.src, msg.Message.dest, msg.Message.tag) in
  let seq = ch.send_seq in
  ch.send_seq <- seq + 1;
  let msg = { msg with Message.seq = seq } in
  set_clock t p (t.stats.Stats.clocks.(p) +. t.config.Config.alpha);
  let base_arrival =
    t.stats.Stats.clocks.(p)
    +. (t.config.Config.beta *. float_of_int msg.Message.bytes)
  in
  t.stats.Stats.messages <- t.stats.Stats.messages + 1;
  t.stats.Stats.message_bytes <- t.stats.Stats.message_bytes + msg.Message.bytes;
  record t
    (Stats.Ev_send
       { at = t.stats.Stats.clocks.(p); src = msg.Message.src;
         dest = msg.Message.dest; tag = msg.Message.tag;
         bytes = msg.Message.bytes });
  (match t.config.Config.trace with
  | Some tr ->
    Tr.emit tr ~kind:Tr.Send ~at:t.stats.Stats.clocks.(p) ~proc:msg.Message.src
      ~peer:msg.Message.dest ~tag:msg.Message.tag ~seq ~bytes:msg.Message.bytes ()
  | None -> ());
  match t.config.Config.faults with
  | None -> insert_arrival t msg base_arrival
  | Some plan ->
    let d =
      Fault.deliver plan
        ~msg_cost:(Config.message_cost t.config msg.Message.bytes)
        ~src:msg.Message.src ~dest:msg.Message.dest ~tag:msg.Message.tag ~seq
    in
    t.stats.Stats.faults_injected <- t.stats.Stats.faults_injected + d.Fault.injected;
    t.stats.Stats.retransmits <- t.stats.Stats.retransmits + (d.Fault.attempts - 1);
    if d.Fault.attempts > 1 then begin
      record t
        (Stats.Ev_fault
           { at = base_arrival; src = msg.Message.src; dest = msg.Message.dest;
             tag = msg.Message.tag; seq; kind = "retransmit" });
      match t.config.Config.trace with
      | Some tr ->
        Tr.emit tr ~kind:Tr.Retransmit ~at:base_arrival ~proc:msg.Message.src
          ~peer:msg.Message.dest ~tag:msg.Message.tag ~seq ()
      | None -> ()
    end;
    if d.Fault.lost then begin
      t.stats.Stats.messages_lost <- t.stats.Stats.messages_lost + 1;
      t.lost <-
        { l_src = msg.Message.src; l_dest = msg.Message.dest;
          l_tag = msg.Message.tag; l_seq = seq; l_attempts = d.Fault.attempts }
        :: t.lost;
      record t
        (Stats.Ev_fault
           { at = base_arrival; src = msg.Message.src; dest = msg.Message.dest;
             tag = msg.Message.tag; seq; kind = "lost" });
      match t.config.Config.trace with
      | Some tr ->
        Tr.emit tr ~kind:Tr.Lost ~at:base_arrival ~proc:msg.Message.src
          ~peer:msg.Message.dest ~tag:msg.Message.tag ~seq ()
      | None -> ()
    end
    else begin
      t.stats.Stats.fault_delay <- t.stats.Stats.fault_delay +. d.Fault.added_delay;
      let arrival = base_arrival +. d.Fault.added_delay in
      if d.Fault.added_delay > 0.0 && d.Fault.attempts = 1 then begin
        record t
          (Stats.Ev_fault
             { at = arrival; src = msg.Message.src; dest = msg.Message.dest;
               tag = msg.Message.tag; seq; kind = "delayed" });
        match t.config.Config.trace with
        | Some tr ->
          Tr.emit tr ~kind:Tr.Delay ~at:arrival ~proc:msg.Message.src
            ~peer:msg.Message.dest ~tag:msg.Message.tag ~seq ()
        | None -> ()
      end;
      insert_arrival t msg arrival;
      if d.Fault.duplicated then
        (* the duplicate trails the original by one startup cost and is
           deduped on insertion *)
        insert_arrival t msg (arrival +. t.config.Config.alpha)
    end

(* Run one processor's computation under the effect handler. *)
let run_proc t (p : int) (f : unit -> Interp.frame) : outcome =
  match_with f ()
    { retc = (fun frame -> O_done frame);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Eff.Tick dt ->
            Some
              (fun (k : (a, outcome) continuation) ->
                let dt = dt *. slowdown t p in
                set_clock t p (t.stats.Stats.clocks.(p) +. dt);
                t.stats.Stats.busy.(p) <- t.stats.Stats.busy.(p) +. dt;
                continue k ())
          | Eff.Send msg ->
            Some
              (fun (k : (a, outcome) continuation) ->
                transmit t p msg;
                continue k ())
          | Eff.Recv (src, tag, loc) ->
            Some
              (fun (k : (a, outcome) continuation) ->
                let ch = channel t (src, p, tag) in
                match take_deliverable ch with
                | Some delivery -> continue k (accept_recv t p ~src ~tag delivery)
                | None -> O_blocked_recv { src; tag; loc; k })
          | Eff.Collective (site, op, loc) ->
            Some
              (fun (k : (a, outcome) continuation) ->
                O_blocked_coll { site; op; loc; k })
          | Eff.Output line ->
            Some
              (fun (k : (a, outcome) continuation) ->
                t.stats.Stats.outputs <- (p, line) :: t.stats.Stats.outputs;
                continue k ())
          | _ -> None) }

(* --- Collectives ------------------------------------------------------ *)

let word_bytes t = t.config.Config.word_bytes

let coll_label = function
  | Eff.Coll_bcast { label; _ } -> "broadcast " ^ label
  | Eff.Coll_remap { obj; _ } -> "remap " ^ obj.Storage.name
  | Eff.Coll_replay_remap { label; _ } -> "remap " ^ label

let perform_bcast t ~site
    (parts : (int * Eff.coll_op * Loc.t * (unit, outcome) continuation) list) =
  let root, elems =
    match
      List.find_map
        (function
          | p, Eff.Coll_bcast { root; read; _ }, _, _ when root = p ->
            Some (p, read ())
          | _ -> None)
        parts
    with
    | Some x -> x
    | None -> raise (Sim_error (Runtime_error "broadcast with no root participant"))
  in
  let bytes = List.length elems * word_bytes t in
  let cost = Config.bcast_cost t.config bytes in
  let tmax =
    List.fold_left
      (fun acc (p, _, _, _) -> Float.max acc t.stats.Stats.clocks.(p))
      0.0 parts
  in
  t.stats.Stats.bcasts <- t.stats.Stats.bcasts + 1;
  t.stats.Stats.bcast_bytes <- t.stats.Stats.bcast_bytes + bytes;
  record t (Stats.Ev_bcast { at = tmax +. cost; root; bytes; site = 0 });
  let release = tmax +. cost in
  List.iter
    (fun (p, op, _, _) ->
      let entered = t.stats.Stats.clocks.(p) in
      (match t.config.Config.trace with
      | Some tr ->
        let label = coll_label op in
        Tr.emit tr ~kind:Tr.Coll_enter ~at:entered ~proc:p ~tag:site
          ~dur:(release -. entered) ~label ();
        Tr.emit tr ~kind:Tr.Coll_exit ~at:release ~proc:p ~peer:root ~tag:site
          ~bytes ~label ()
      | None -> ());
      set_clock t p release;
      match op with
      | Eff.Coll_bcast { write; _ } -> if p <> root then write elems
      | Eff.Coll_remap _ | Eff.Coll_replay_remap _ ->
        raise (Sim_error (Runtime_error "mixed collective at one site")))
    parts

let perform_remap t ~site
    (parts : (int * Eff.coll_op * Loc.t * (unit, outcome) continuation) list) =
  let nprocs = t.config.Config.nprocs in
  (* Obtain the remap summary.  Real participants carry their storage
     objects: plan and perform the global data movement here.  Replayed
     participants (parallel scheduler) carry the summary the generation
     phase recorded — the data movement already happened; re-raising a
     poisoned summary reproduces generation's planning failure at the
     same point the sequential path would raise it. *)
  let summary =
    match parts with
    | (_, Eff.Coll_replay_remap _, _, _) :: _ ->
      let cell = ref None in
      List.iter
        (fun (_, op, _, _) ->
          match op with
          | Eff.Coll_replay_remap { summary; _ } -> cell := Some summary
          | Eff.Coll_bcast _ ->
            raise (Sim_error (Runtime_error "mixed collective at one site"))
          | Eff.Coll_remap _ ->
            Diag.internal ~pass:"simulate" "real remap op in a replayed site")
        parts;
      (match !cell with
      | Some { contents = Some (Ok s) } -> s
      | Some { contents = Some (Error ex) } -> raise ex
      | _ -> Diag.internal ~pass:"simulate" "replayed remap summary missing")
    | _ ->
      let objs = Array.make nprocs None in
      let new_layout = ref None and move = ref true in
      List.iter
        (fun (p, op, _, _) ->
          match op with
          | Eff.Coll_remap { obj; new_layout = nl; move = mv } ->
            objs.(p) <- Some obj;
            new_layout := Some nl;
            move := mv
          | Eff.Coll_bcast _ | Eff.Coll_replay_remap _ ->
            raise (Sim_error (Runtime_error "mixed collective at one site")))
        parts;
      let new_layout =
        match !new_layout with
        | Some l -> l
        | None -> raise (Sim_error (Runtime_error "remap with no layout"))
      in
      let obj0 =
        match objs.(0) with
        | Some o -> o
        | None -> raise (Sim_error (Runtime_error "remap missing processor 0"))
      in
      Collective.plan_remap ~nprocs ~word_bytes:(word_bytes t) ~objs ~obj0
        ~new_layout ~move:!move
  in
  (* time accounting, identical for real and replayed participants *)
  let tmax =
    List.fold_left
      (fun acc (p, _, _, _) -> Float.max acc t.stats.Stats.clocks.(p))
      0.0 parts
  in
  if not summary.Eff.rs_mark_only then begin
    t.stats.Stats.remaps <- t.stats.Stats.remaps + 1;
    t.stats.Stats.remap_bytes <-
      t.stats.Stats.remap_bytes + summary.Eff.rs_total_bytes
  end
  else t.stats.Stats.remap_marks <- t.stats.Stats.remap_marks + 1;
  record t
    (Stats.Ev_remap
       { at = tmax; array = summary.Eff.rs_array;
         moved_bytes = summary.Eff.rs_total_bytes;
         mark_only = summary.Eff.rs_mark_only });
  (match t.config.Config.trace with
  | Some tr ->
    List.iter
      (fun ((q, r), bytes) ->
        Tr.emit tr ~kind:Tr.Remap ~at:tmax ~proc:q ~peer:r ~tag:site ~bytes
          ~label:summary.Eff.rs_array ())
      summary.Eff.rs_pairs
  | None -> ());
  let label = "remap " ^ summary.Eff.rs_array in
  List.iter
    (fun (p, _, _, _) ->
      let cost =
        Collective.remap_cost ~alpha:t.config.Config.alpha
          ~beta:t.config.Config.beta summary p
      in
      let entered = t.stats.Stats.clocks.(p) in
      let release = tmax +. cost in
      (match t.config.Config.trace with
      | Some tr ->
        Tr.emit tr ~kind:Tr.Coll_enter ~at:entered ~proc:p ~tag:site
          ~dur:(release -. entered) ~label ();
        Tr.emit tr ~kind:Tr.Coll_exit ~at:release ~proc:p ~tag:site
          ~bytes:(summary.Eff.rs_sent.(p) + summary.Eff.rs_received.(p))
          ~label ()
      | None -> ());
      set_clock t p release)
    parts

let perform_collective t site =
  match Hashtbl.find_opt t.colls site with
  | None -> ()
  | Some parts_ref ->
    let parts = List.rev !parts_ref in
    Hashtbl.remove t.colls site;
    (match parts with
    | (_, Eff.Coll_bcast _, _, _) :: _ -> perform_bcast t ~site parts
    | (_, (Eff.Coll_remap _ | Eff.Coll_replay_remap _), _, _) :: _ ->
      perform_remap t ~site parts
    | [] -> ());
    List.iter
      (fun (p, _, _, k) -> Queue.add (p, fun () -> continue k ()) t.runq)
      parts

(* --- Failure diagnosis ------------------------------------------------- *)

(* The wait-for graph at quiescence: every blocked processor, who it
   waits for, a cycle (if one exists) among those edges, and any
   permanently lost messages that explain the blockage. *)
let wait_for_graph t : wait_for =
  let nprocs = t.config.Config.nprocs in
  let waiting = ref [] in
  let succs = Array.make nprocs [] in
  let blocked = Array.make nprocs false in
  Hashtbl.iter
    (fun p (src, tag, loc, _) ->
      blocked.(p) <- true;
      succs.(p) <- [ src ];
      waiting :=
        { w_proc = p; w_on = On_recv { src; tag; loc };
          w_clock = t.stats.Stats.clocks.(p) }
        :: !waiting)
    t.parked;
  Hashtbl.iter
    (fun site members ->
      let present = List.map (fun (p, _, _, _) -> p) !members in
      let absent =
        List.filter (fun q -> not (List.mem q present))
          (List.init nprocs (fun q -> q))
      in
      List.iter
        (fun (p, op, loc, _) ->
          blocked.(p) <- true;
          succs.(p) <- absent;
          waiting :=
            { w_proc = p;
              w_on = On_collective { site; label = coll_label op; loc };
              w_clock = t.stats.Stats.clocks.(p) }
            :: !waiting)
        !members)
    t.colls;
  (* cycle extraction: DFS over the wait-for edges; [path] holds the
     gray stack with the current node at its head *)
  let state = Array.make nprocs 0 in  (* 0 unvisited, 1 on stack, 2 done *)
  let cycle = ref [] in
  let rec dfs path p =
    List.iter
      (fun q ->
        if !cycle = [] && blocked.(q) then
          if state.(q) = 1 then begin
            (* back edge p -> q: the cycle is q .. p along the stack *)
            let rec upto = function
              | [] -> []
              | r :: rest -> if r = q then [ r ] else r :: upto rest
            in
            cycle := List.rev (upto path)
          end
          else if state.(q) = 0 then begin
            state.(q) <- 1;
            dfs (q :: path) q;
            state.(q) <- 2
          end)
      succs.(p)
  in
  for p = 0 to nprocs - 1 do
    if blocked.(p) && state.(p) = 0 then begin
      state.(p) <- 1;
      dfs [ p ] p;
      state.(p) <- 2
    end
  done;
  let order w w' = compare w.w_proc w'.w_proc in
  { waiting = List.sort order !waiting; cycle = !cycle; lost = List.rev t.lost }

(* --- Main loop --------------------------------------------------------- *)

type partial = {
  p_stats : Stats.t;
  p_frames : Interp.frame array option;
      (* None when the budget tripped before every processor finished *)
  p_exhausted : string option;
}

(* Drain the run queue to completion (or budget exhaustion).  Shared by
   the sequential path and the parallel path's replay phase — running the
   identical loop over scripted players is what makes domains > 1
   bit-identical to domains = 1. *)
let exec_loop t : partial =
  let nprocs = t.config.Config.nprocs in
  let finished = ref 0 in
  match
    (try
     while not (Queue.is_empty t.runq) do
       let p, thunk = Queue.pop t.runq in
       match thunk () with
       | O_done frame ->
         t.final_frames.(p) <- Some frame;
         incr finished
       | O_blocked_recv { src; tag; loc; k } ->
         let ch = channel t (src, p, tag) in
         if Hashtbl.mem ch.pending ch.deliver_seq then
           Queue.add (p, resume_recv t p src tag loc k) t.runq
         else begin
           (match t.config.Config.trace with
           | Some tr ->
             Tr.emit tr ~kind:Tr.Block ~at:t.stats.Stats.clocks.(p) ~proc:p
               ~peer:src ~tag ()
           | None -> ());
           Hashtbl.replace t.parked p (src, tag, loc, k)
         end
       | O_blocked_coll { site; op; loc; k } ->
         let members =
           match Hashtbl.find_opt t.colls site with
           | Some r -> r
           | None ->
             let r = ref [] in
             Hashtbl.replace t.colls site r;
             r
         in
         members := (p, op, loc, k) :: !members;
         if List.length !members = nprocs then perform_collective t site
     done
   with Storage.Invalid_read { array; index; proc } ->
     raise
       (Sim_error
          (Invalid_read
             { proc; array; index; clock = t.stats.Stats.clocks.(proc) })))
  with
  | () ->
    if !finished < nprocs then raise (Sim_error (Deadlock (wait_for_graph t)));
    let frames =
      Array.map
        (function
          | Some f -> f
          | None -> raise (Sim_error (Runtime_error "missing final frame")))
        t.final_frames
    in
    { p_stats = t.stats; p_frames = Some frames; p_exhausted = None }
  | exception Budget_stop reason ->
    (* graceful degradation: stats so far, no final frames.  The parked
       continuations are dropped; each holds only simulator state. *)
    { p_stats = t.stats; p_frames = None; p_exhausted = Some reason }

let run_partial_seq ?budget (config : Config.t) (prog : Node.program) : partial =
  let budget = Option.map Budget.start budget in
  let t = create ?budget config in
  for p = 0 to config.Config.nprocs - 1 do
    let interp = Interp.create ~proc:p ~config ~stats:t.stats prog in
    Queue.add (p, fun () -> run_proc t p (fun () -> Interp.run_main interp)) t.runq
  done;
  exec_loop t

(* A scripted player: re-performs one processor's recorded action stream
   as real effects against the live scheduler.  Compute costs and
   interpreter-level trace events attach to the action they preceded;
   the network layer re-stamps, re-prices, and re-faults every send, so
   the replay IS the sequential simulation of the program. *)
let play_actions t (script : Pdes.action list) (frame : Interp.frame option)
    (gen_reason : string option) () : Interp.frame =
  List.iter
    (fun (a : Pdes.action) ->
      t.stats.Stats.flops <- t.stats.Stats.flops + a.Pdes.a_flops;
      t.stats.Stats.mem_ops <- t.stats.Stats.mem_ops + a.Pdes.a_mems;
      (match t.config.Config.trace with
      | Some tr -> List.iter (Tr.emit_ev tr) a.Pdes.a_emits
      | None -> ());
      match a.Pdes.a_op with
      | Pdes.A_tick dt -> Eff.tick dt
      | Pdes.A_send msg -> Eff.send msg
      | Pdes.A_recv { src; tag; loc } -> ignore (Eff.recv ~src ~tag ~loc)
      | Pdes.A_coll { site; op; loc; post } ->
        let op =
          match op with
          | Eff.Coll_bcast { root; label; read; write } ->
            (* charge the root's recorded read() compute at perform
               time, exactly where the sequential path charges it *)
            let read () =
              let dfl, dmm = !post in
              t.stats.Stats.flops <- t.stats.Stats.flops + dfl;
              t.stats.Stats.mem_ops <- t.stats.Stats.mem_ops + dmm;
              read ()
            in
            Eff.Coll_bcast { root; label; read; write }
          | other -> other
        in
        Eff.collective ~site ~loc op
      | Pdes.A_output line -> Eff.output line
      | Pdes.A_done -> ()
      | Pdes.A_raise ex -> raise ex)
    script;
  match frame with
  | Some f -> f
  | None ->
    (* the stream was truncated by generation's per-processor budget;
       only reachable under a wall-clock budget (step/event budgets trip
       the replay's shared budget first) *)
    raise (Budget_stop (Option.value ~default:"budget exhausted" gen_reason))

let run_partial_par ?budget (config : Config.t) (prog : Node.program) : partial =
  let gen = Pdes.generate ?budget config prog in
  let budget = Option.map Budget.start budget in
  let t = create ?budget config in
  for p = 0 to config.Config.nprocs - 1 do
    Queue.add
      ( p,
        fun () ->
          run_proc t p
            (play_actions t gen.Pdes.scripts.(p) gen.Pdes.frames.(p)
               gen.Pdes.g_exhausted) )
      t.runq
  done;
  exec_loop t

let run_partial ?budget (config : Config.t) (prog : Node.program) : partial =
  if config.Config.domains > 1 then run_partial_par ?budget config prog
  else run_partial_seq ?budget config prog

let run (config : Config.t) (prog : Node.program) : Stats.t * Interp.frame array =
  match run_partial config prog with
  | { p_stats; p_frames = Some frames; _ } -> (p_stats, frames)
  | { p_frames = None; _ } ->
    Diag.internal ~pass:"simulate" "budget exhaustion without a budget"
