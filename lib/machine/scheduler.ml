(* Virtual-time scheduler for the processor ensemble.

   Each logical processor runs as a delimited computation (via OCaml 5
   effect handlers).  A processor runs until it finishes or blocks on a
   receive / collective; sends are asynchronous (infinite buffering, the
   iPSC model) and carry an arrival timestamp of
   [sender_clock + alpha + beta * bytes].  A blocking receive advances the
   receiver's clock to [max(own clock, arrival)].  Collectives
   (broadcast, remap) synchronize all P processors at a site, advance
   everyone to the ensemble maximum plus the collective's cost, and
   perform the global data movement. *)

open Fd_support
open Effect.Deep

type error =
  | Deadlock of string
  | Runtime_error of string

exception Sim_error of error

let error_to_string = function
  | Deadlock s -> "deadlock: " ^ s
  | Runtime_error s -> "runtime error: " ^ s

type outcome =
  | O_done of Interp.frame
  | O_blocked_recv of { src : int; tag : int; k : (Message.t, outcome) continuation }
  | O_blocked_coll of { site : int; op : Eff.coll_op; k : (unit, outcome) continuation }

type t = {
  config : Config.t;
  stats : Stats.t;
  channels : (int * int * int, (Message.t * float) Queue.t) Hashtbl.t;
  (* (src, dest, tag) -> queued messages with arrival times *)
  parked : (int, int * int * (Message.t, outcome) continuation) Hashtbl.t;
  (* blocked receivers: proc -> (src, tag, continuation) *)
  colls : (int, (int * Eff.coll_op * (unit, outcome) continuation) list ref) Hashtbl.t;
  runq : (int * (unit -> outcome)) Queue.t;
  final_frames : Interp.frame option array;
}

let create config =
  { config;
    stats = Stats.create config.Config.nprocs;
    channels = Hashtbl.create 64;
    parked = Hashtbl.create 8;
    colls = Hashtbl.create 8;
    runq = Queue.create ();
    final_frames = Array.make config.Config.nprocs None }

let channel t key =
  match Hashtbl.find_opt t.channels key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.channels key q;
    q

let record t ev =
  if t.config.Config.record_trace then t.stats.Stats.trace <- ev :: t.stats.Stats.trace

let resume_recv t p src tag k : unit -> outcome =
  fun () ->
    let q = channel t (src, p, tag) in
    let msg, arrival = Queue.pop q in
    let before = t.stats.Stats.clocks.(p) in
    t.stats.Stats.clocks.(p) <- Float.max before arrival;
    let waited = Float.max 0.0 (arrival -. before) in
    t.stats.Stats.max_wait <- Float.max t.stats.Stats.max_wait waited;
    record t
      (Stats.Ev_recv { at = t.stats.Stats.clocks.(p); src; dest = p; tag; waited });
    continue k msg

(* Run one processor's computation under the effect handler. *)
let run_proc t (p : int) (f : unit -> Interp.frame) : outcome =
  match_with f ()
    { retc = (fun frame -> O_done frame);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Eff.Tick dt ->
            Some
              (fun (k : (a, outcome) continuation) ->
                t.stats.Stats.clocks.(p) <- t.stats.Stats.clocks.(p) +. dt;
                t.stats.Stats.busy.(p) <- t.stats.Stats.busy.(p) +. dt;
                continue k ())
          | Eff.Send msg ->
            Some
              (fun (k : (a, outcome) continuation) ->
                let send_cost = t.config.Config.alpha in
                t.stats.Stats.clocks.(p) <- t.stats.Stats.clocks.(p) +. send_cost;
                let arrival =
                  t.stats.Stats.clocks.(p)
                  +. (t.config.Config.beta *. float_of_int msg.Message.bytes)
                in
                t.stats.Stats.messages <- t.stats.Stats.messages + 1;
                t.stats.Stats.message_bytes <-
                  t.stats.Stats.message_bytes + msg.Message.bytes;
                record t
                  (Stats.Ev_send
                     { at = t.stats.Stats.clocks.(p); src = msg.Message.src;
                       dest = msg.Message.dest; tag = msg.Message.tag;
                       bytes = msg.Message.bytes });
                Queue.add (msg, arrival)
                  (channel t (msg.Message.src, msg.Message.dest, msg.Message.tag));
                (* wake a parked receiver waiting on this channel *)
                (match Hashtbl.find_opt t.parked msg.Message.dest with
                | Some (src', tag', krecv)
                  when src' = msg.Message.src && tag' = msg.Message.tag ->
                  Hashtbl.remove t.parked msg.Message.dest;
                  Queue.add
                    (msg.Message.dest,
                     resume_recv t msg.Message.dest src' tag' krecv)
                    t.runq
                | _ -> ());
                continue k ())
          | Eff.Recv (src, tag) ->
            Some
              (fun (k : (a, outcome) continuation) ->
                let q = channel t (src, p, tag) in
                if not (Queue.is_empty q) then begin
                  let msg, arrival = Queue.pop q in
                  let before = t.stats.Stats.clocks.(p) in
                  t.stats.Stats.clocks.(p) <- Float.max before arrival;
                  let waited = Float.max 0.0 (arrival -. before) in
                  t.stats.Stats.max_wait <- Float.max t.stats.Stats.max_wait waited;
                  record t
                    (Stats.Ev_recv
                       { at = t.stats.Stats.clocks.(p); src; dest = p; tag; waited });
                  continue k msg
                end
                else O_blocked_recv { src; tag; k })
          | Eff.Collective (site, op) ->
            Some (fun (k : (a, outcome) continuation) -> O_blocked_coll { site; op; k })
          | Eff.Output line ->
            Some
              (fun (k : (a, outcome) continuation) ->
                t.stats.Stats.outputs <- (p, line) :: t.stats.Stats.outputs;
                continue k ())
          | _ -> None) }

(* --- Collectives ------------------------------------------------------ *)

let word_bytes t = t.config.Config.word_bytes

let perform_bcast t (parts : (int * Eff.coll_op * (unit, outcome) continuation) list) =
  let root, elems =
    match
      List.find_map
        (function
          | p, Eff.Coll_bcast { root; read; _ }, _ when root = p -> Some (p, read ())
          | _ -> None)
        parts
    with
    | Some x -> x
    | None -> raise (Sim_error (Runtime_error "broadcast with no root participant"))
  in
  let bytes = List.length elems * word_bytes t in
  let cost = Config.bcast_cost t.config bytes in
  let tmax =
    List.fold_left (fun acc (p, _, _) -> Float.max acc t.stats.Stats.clocks.(p)) 0.0 parts
  in
  t.stats.Stats.bcasts <- t.stats.Stats.bcasts + 1;
  t.stats.Stats.bcast_bytes <- t.stats.Stats.bcast_bytes + bytes;
  record t (Stats.Ev_bcast { at = tmax +. cost; root; bytes; site = 0 });
  List.iter
    (fun (p, op, _) ->
      t.stats.Stats.clocks.(p) <- tmax +. cost;
      match op with
      | Eff.Coll_bcast { write; _ } -> if p <> root then write elems
      | Eff.Coll_remap _ ->
        raise (Sim_error (Runtime_error "mixed collective at one site")))
    parts

let perform_remap t (parts : (int * Eff.coll_op * (unit, outcome) continuation) list) =
  let nprocs = t.config.Config.nprocs in
  let objs = Array.make nprocs None in
  let new_layout = ref None and move = ref true in
  List.iter
    (fun (p, op, _) ->
      match op with
      | Eff.Coll_remap { obj; new_layout = nl; move = mv } ->
        objs.(p) <- Some obj;
        new_layout := Some nl;
        move := mv
      | Eff.Coll_bcast _ ->
        raise (Sim_error (Runtime_error "mixed collective at one site")))
    parts;
  let new_layout =
    match !new_layout with
    | Some l -> l
    | None -> raise (Sim_error (Runtime_error "remap with no layout"))
  in
  let obj0 =
    match objs.(0) with
    | Some o -> o
    | None -> raise (Sim_error (Runtime_error "remap missing processor 0"))
  in
  let old_layout = obj0.Storage.layout in
  let old_owned = Layout.owned old_layout ~nprocs in
  let new_owned = Layout.owned new_layout ~nprocs in
  let sent = Array.make nprocs 0 and received = Array.make nprocs 0 in
  let partners = Hashtbl.create 16 in
  let moves = ref [] in
  (* plan the data movement before touching layouts *)
  if !move then
    Storage.iter_elements obj0 (fun idx _flat ->
        let dim_index d = idx.(d) in
        let old_owner =
          match old_layout.Layout.dist_dim with
          | None -> 0  (* replicated: processor 0 is as authoritative as any *)
          | Some d -> Layout.owner_of old_layout ~nprocs (dim_index d)
        in
        for r = 0 to nprocs - 1 do
          let needs =
            match new_layout.Layout.dist_dim with
            | None -> true
            | Some d -> Iset.mem (dim_index d) new_owned.(r)
          in
          let had =
            match old_layout.Layout.dist_dim with
            | None -> true
            | Some d -> Iset.mem (dim_index d) old_owned.(r)
          in
          if needs && not had then begin
            let src_obj =
              match objs.(old_owner) with Some o -> o | None -> assert false
            in
            let v =
              Storage.get_raw src_obj (Storage.flat_index src_obj idx)
            in
            moves := (r, Array.copy idx, v) :: !moves;
            sent.(old_owner) <- sent.(old_owner) + word_bytes t;
            received.(r) <- received.(r) + word_bytes t;
            Hashtbl.replace partners (old_owner, r) ()
          end
        done);
  (* switch layouts everywhere (resets validity to new ownership) *)
  Array.iter
    (function
      | Some obj -> Storage.set_layout ~nprocs obj new_layout
      | None -> raise (Sim_error (Runtime_error "remap missing a processor")))
    objs;
  (* apply the planned copies *)
  List.iter
    (fun (r, idx, v) ->
      match objs.(r) with
      | Some obj -> Storage.receive obj idx v
      | None -> assert false)
    !moves;
  (* time accounting *)
  let tmax =
    List.fold_left (fun acc (p, _, _) -> Float.max acc t.stats.Stats.clocks.(p)) 0.0 parts
  in
  let npairs = Array.make nprocs 0 in
  Hashtbl.iter
    (fun (q, r) () ->
      npairs.(q) <- npairs.(q) + 1;
      npairs.(r) <- npairs.(r) + 1)
    partners;
  let total_bytes = Array.fold_left ( + ) 0 sent in
  if !move then begin
    t.stats.Stats.remaps <- t.stats.Stats.remaps + 1;
    t.stats.Stats.remap_bytes <- t.stats.Stats.remap_bytes + total_bytes
  end
  else t.stats.Stats.remap_marks <- t.stats.Stats.remap_marks + 1;
  record t
    (Stats.Ev_remap
       { at = tmax; array = obj0.Storage.name; moved_bytes = total_bytes;
         mark_only = not !move });
  List.iter
    (fun (p, _, _) ->
      let cost =
        if !move then
          (float_of_int npairs.(p) *. t.config.Config.alpha)
          +. (t.config.Config.beta *. float_of_int (sent.(p) + received.(p)))
        else 0.0
      in
      t.stats.Stats.clocks.(p) <- tmax +. cost)
    parts

let perform_collective t site =
  match Hashtbl.find_opt t.colls site with
  | None -> ()
  | Some parts_ref ->
    let parts = List.rev !parts_ref in
    Hashtbl.remove t.colls site;
    (match parts with
    | (_, Eff.Coll_bcast _, _) :: _ -> perform_bcast t parts
    | (_, Eff.Coll_remap _, _) :: _ -> perform_remap t parts
    | [] -> ());
    List.iter (fun (p, _, k) -> Queue.add (p, fun () -> continue k ()) t.runq) parts

(* --- Main loop --------------------------------------------------------- *)

let describe_blocked t =
  let parts = ref [] in
  Hashtbl.iter
    (fun p (src, tag, _) ->
      parts := Fmt.str "p%d waiting recv from p%d tag %d" p src tag :: !parts)
    t.parked;
  Hashtbl.iter
    (fun site members ->
      parts :=
        Fmt.str "collective site %d has %d/%d participants" site
          (List.length !members) t.config.Config.nprocs
        :: !parts)
    t.colls;
  String.concat "; " (List.rev !parts)

let run (config : Config.t) (prog : Node.program) : Stats.t * Interp.frame array =
  let t = create config in
  let nprocs = config.Config.nprocs in
  for p = 0 to nprocs - 1 do
    let interp = Interp.create ~proc:p ~config ~stats:t.stats prog in
    Queue.add (p, fun () -> run_proc t p (fun () -> Interp.run_main interp)) t.runq
  done;
  let finished = ref 0 in
  (try
     while not (Queue.is_empty t.runq) do
       let p, thunk = Queue.pop t.runq in
       match thunk () with
       | O_done frame ->
         t.final_frames.(p) <- Some frame;
         incr finished
       | O_blocked_recv { src; tag; k } ->
         let q = channel t (src, p, tag) in
         if not (Queue.is_empty q) then
           Queue.add (p, resume_recv t p src tag k) t.runq
         else Hashtbl.replace t.parked p (src, tag, k)
       | O_blocked_coll { site; op; k } ->
         let members =
           match Hashtbl.find_opt t.colls site with
           | Some r -> r
           | None ->
             let r = ref [] in
             Hashtbl.replace t.colls site r;
             r
         in
         members := (p, op, k) :: !members;
         if List.length !members = nprocs then perform_collective t site
     done
   with Storage.Invalid_read { array; index; proc } ->
     raise
       (Sim_error
          (Runtime_error
             (Fmt.str
                "processor %d read non-owned, never-received element %s(%s): missing communication"
                proc array
                (String.concat "," (Array.to_list (Array.map string_of_int index)))))));
  if !finished < nprocs then
    raise (Sim_error (Deadlock (describe_blocked t)));
  let frames =
    Array.map
      (function Some f -> f | None -> raise (Sim_error (Runtime_error "missing final frame")))
      t.final_frames
  in
  (t.stats, frames)
