(** Parallel generation phase of the domains scheduler.

    [generate] runs the per-processor interpreters as effect-handler
    coroutines sharded across OCaml 5 domains, batched by a safe-window
    barrier, and records each processor's {e action stream}: the exact
    sequence of effects it performed with compute costs and
    interpreter-level trace events attached.  The sequential scheduler
    ({!Scheduler}) then {e replays} the streams through its unmodified
    event loop, which makes every observable — [Stats.to_json], trace
    ring contents and order, outputs, error behaviour — bit-identical
    to a [domains = 1] run by construction. *)

open Fd_support

type action = {
  a_flops : int;   (** flops charged since the previous action *)
  a_mems : int;    (** memory ops charged since the previous action *)
  a_emits : Fd_trace.Trace.ev list;
      (** interpreter-level trace events (owner-guard skips) since the
          previous action, oldest first; replayed verbatim *)
  a_op : op;
}

and op =
  | A_tick of float  (** the Tick effect's argument, pre-slowdown *)
  | A_send of Message.t
      (** seq reset to 0 and payload stripped: replay re-stamps/re-prices *)
  | A_recv of { src : int; tag : int; loc : Loc.t }
  | A_coll of { site : int; op : Eff.coll_op; loc : Loc.t;
                post : (int * int) ref }
      (** [op] is the scripted replay op; [post] holds the broadcast
          root's read() (flops, mem_ops) deltas, charged at perform time *)
  | A_output of string
  | A_done           (** the processor's computation returned *)
  | A_raise of exn   (** the computation raised; replay re-raises *)

type result = {
  scripts : action list array;  (** per-processor action streams *)
  frames : Interp.frame option array;
      (** final frame for processors that ran to completion *)
  g_exhausted : string option;
      (** budget reason, if generation truncated any stream; the replay
          raises [Budget_stop] with it should a stream run dry *)
}

val generate :
  ?budget:Budget.t -> Config.t -> Node.program -> result
(** Run the generation phase on [max 1 (min config.domains nprocs)]
    domains.  Each processor gets a {e fresh} budget at the full limits
    (one processor's usage is bounded by the ensemble total, so for
    step/event budgets the replay's shared budget always trips before
    any stream runs dry, keeping budgeted partial results bit-identical;
    wall-clock budgets yield a valid sequential {e prefix} instead). *)
