(* Execution statistics for a simulated run. *)

type event =
  | Ev_send of { at : float; src : int; dest : int; tag : int; bytes : int }
  | Ev_recv of { at : float; src : int; dest : int; tag : int; waited : float }
  | Ev_bcast of { at : float; root : int; bytes : int; site : int }
  | Ev_remap of { at : float; array : string; moved_bytes : int; mark_only : bool }
  | Ev_fault of { at : float; src : int; dest : int; tag : int; seq : int;
                  kind : string }
      (* kind: "retransmit" | "duplicate" | "delayed" | "lost" *)

type t = {
  nprocs : int;
  mutable messages : int;        (* point-to-point messages *)
  mutable message_bytes : int;
  mutable bcasts : int;
  mutable bcast_bytes : int;
  mutable remaps : int;          (* physical remap operations *)
  mutable remap_marks : int;     (* mark-only remaps (array-kill opt) *)
  mutable remap_bytes : int;
  mutable flops : int;
  mutable mem_ops : int;
  mutable max_wait : float;      (* longest single receive wait, seconds *)
  mutable faults_injected : int; (* fault events the plan applied *)
  mutable retransmits : int;     (* recovery retransmissions performed *)
  mutable duplicates_dropped : int;  (* copies deduped on sequence number *)
  mutable messages_lost : int;   (* messages lost after max retries *)
  mutable fault_delay : float;   (* total added arrival latency, seconds *)
  mutable watchdog_fired : bool; (* virtual-time watchdog aborted the run *)
  clocks : float array;          (* per-processor virtual time, seconds *)
  busy : float array;            (* per-processor compute time *)
  mutable outputs : (int * string) list;  (* (proc, line), reversed *)
  mutable trace : event list;              (* reversed; only when enabled *)
}

let create nprocs =
  { nprocs; messages = 0; message_bytes = 0; bcasts = 0; bcast_bytes = 0;
    remaps = 0; remap_marks = 0; remap_bytes = 0; flops = 0; mem_ops = 0;
    max_wait = 0.0; faults_injected = 0; retransmits = 0; duplicates_dropped = 0;
    messages_lost = 0; fault_delay = 0.0; watchdog_fired = false;
    clocks = Array.make nprocs 0.0; busy = Array.make nprocs 0.0;
    outputs = []; trace = [] }

let elapsed t = Array.fold_left max 0.0 t.clocks

let total_busy t = Array.fold_left ( +. ) 0.0 t.busy

(* Total communication operations: each p2p message plus each broadcast. *)
let comm_ops t = t.messages + t.bcasts

let outputs t = List.rev_map snd t.outputs

let trace t = List.rev t.trace

let pp_event ppf = function
  | Ev_send { at; src; dest; tag; bytes } ->
    Fmt.pf ppf "%10.1f us  send  p%d -> p%d  tag %d  %d bytes" (at *. 1e6) src dest tag bytes
  | Ev_recv { at; src; dest; tag; waited } ->
    Fmt.pf ppf "%10.1f us  recv  p%d <- p%d  tag %d  (waited %.1f us)" (at *. 1e6)
      dest src tag (waited *. 1e6)
  | Ev_bcast { at; root; bytes; site } ->
    Fmt.pf ppf "%10.1f us  bcast from p%d  site %d  %d bytes" (at *. 1e6) root site bytes
  | Ev_remap { at; array; moved_bytes; mark_only } ->
    Fmt.pf ppf "%10.1f us  remap %s  %s" (at *. 1e6) array
      (if mark_only then "(mark only)" else Fmt.str "%d bytes moved" moved_bytes)
  | Ev_fault { at; src; dest; tag; seq; kind } ->
    Fmt.pf ppf "%10.1f us  fault %-10s p%d -> p%d  tag %d seq %d" (at *. 1e6)
      kind src dest tag seq

let to_json t : Fd_support.Json.t =
  let farr a = Fd_support.Json.List (Array.to_list (Array.map (fun x -> Fd_support.Json.Float x) a)) in
  Fd_support.Json.Obj
    [ ("nprocs", Int t.nprocs);
      ("messages", Int t.messages);
      ("message_bytes", Int t.message_bytes);
      ("bcasts", Int t.bcasts);
      ("bcast_bytes", Int t.bcast_bytes);
      ("remaps", Int t.remaps);
      ("remap_marks", Int t.remap_marks);
      ("remap_bytes", Int t.remap_bytes);
      ("flops", Int t.flops);
      ("mem_ops", Int t.mem_ops);
      ("elapsed", Float (elapsed t));
      ("total_busy", Float (total_busy t));
      ("max_wait", Float t.max_wait);
      ("faults_injected", Int t.faults_injected);
      ("retransmits", Int t.retransmits);
      ("duplicates_dropped", Int t.duplicates_dropped);
      ("messages_lost", Int t.messages_lost);
      ("fault_delay", Float t.fault_delay);
      ("watchdog_fired", Int (if t.watchdog_fired then 1 else 0));
      ("comm_ops", Int (comm_ops t));
      ("clocks", farr t.clocks);
      ("busy", farr t.busy);
      ("outputs", List (List.map (fun s -> Fd_support.Json.Str s) (outputs t))) ]

(* One metrics registry per run: the same counters [to_json] reports,
   published through the Fd_trace.Metrics registry so simulator
   statistics, trace-derived histograms, and tool counters share one
   serialization. *)
let to_metrics t : Fd_trace.Metrics.t =
  let m = Fd_trace.Metrics.create () in
  let c name v = Fd_trace.Metrics.set_counter (Fd_trace.Metrics.counter m name) v in
  let g name v = Fd_trace.Metrics.set (Fd_trace.Metrics.gauge m name) v in
  c "nprocs" t.nprocs;
  c "messages" t.messages;
  c "message_bytes" t.message_bytes;
  c "bcasts" t.bcasts;
  c "bcast_bytes" t.bcast_bytes;
  c "remaps" t.remaps;
  c "remap_marks" t.remap_marks;
  c "remap_bytes" t.remap_bytes;
  c "flops" t.flops;
  c "mem_ops" t.mem_ops;
  c "comm_ops" (comm_ops t);
  c "faults_injected" t.faults_injected;
  c "retransmits" t.retransmits;
  c "duplicates_dropped" t.duplicates_dropped;
  c "messages_lost" t.messages_lost;
  c "watchdog_fired" (if t.watchdog_fired then 1 else 0);
  g "elapsed_seconds" (elapsed t);
  g "busy_seconds" (total_busy t);
  g "max_wait_seconds" t.max_wait;
  g "fault_delay_seconds" t.fault_delay;
  m

let pp ppf t =
  Fmt.pf ppf
    "@[<v>elapsed %.3f ms on %d procs@ messages: %d (%d bytes), broadcasts: %d (%d bytes)@ remaps: %d physical (%d bytes) + %d mark-only@ flops: %d, memory ops: %d"
    (elapsed t *. 1e3) t.nprocs t.messages t.message_bytes t.bcasts t.bcast_bytes
    t.remaps t.remap_bytes t.remap_marks t.flops t.mem_ops;
  (* printed only under an active fault plan, so fault-free output is
     byte-identical to the reliable-network simulator's *)
  if
    t.faults_injected > 0 || t.retransmits > 0 || t.duplicates_dropped > 0
    || t.messages_lost > 0 || t.watchdog_fired
  then
    Fmt.pf ppf
      "@ faults: %d injected, %d retransmits, %d duplicates dropped, %d lost, +%.1f us delay"
      t.faults_injected t.retransmits t.duplicates_dropped t.messages_lost
      (t.fault_delay *. 1e6);
  Fmt.pf ppf "@]"
