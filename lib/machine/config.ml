(* Machine model for the MIMD distributed-memory simulator.

   The default numbers approximate the Intel iPSC/860 the paper's group
   reported against: ~75 us message startup, ~0.4 us per byte
   (~2.5 MB/s), and a few hundredths of a microsecond per arithmetic
   operation on the i860.  Times are in seconds. *)

type t = {
  nprocs : int;
  alpha : float;        (* message startup cost, seconds *)
  beta : float;         (* per-byte transfer cost, seconds *)
  flop : float;         (* per arithmetic-operation cost, seconds *)
  mem_op : float;       (* per load/store cost, seconds *)
  word_bytes : int;     (* bytes per REAL/INTEGER element *)
  tree_collectives : bool;  (* log-tree broadcast vs sequential sends *)
  strict_validity : bool;   (* raise on reads of non-owned, non-received data *)
  record_trace : bool;      (* record a communication-event timeline *)
  faults : Fault.t option;  (* adversarial-network plan; None = reliable *)
  trace : Fd_trace.Trace.t option;  (* structured event sink; None = off *)
  domains : int;        (* OCaml domains for the parallel scheduler; 1 =
                           the sequential path, byte-identical results *)
  safe_window : float option;
      (* conservative-PDES lookahead window (seconds); None = alpha.
         A batching knob only: any value yields identical results *)
}

let ipsc860 ?(nprocs = 4) () = {
  nprocs;
  alpha = 75e-6;
  beta = 0.4e-6;
  flop = 0.05e-6;
  mem_op = 0.025e-6;
  word_bytes = 8;
  tree_collectives = true;
  strict_validity = true;
  record_trace = false;
  faults = None;
  trace = None;
  domains = 1;
  safe_window = None;
}

let make ?(alpha = 75e-6) ?(beta = 0.4e-6) ?(flop = 0.05e-6) ?(mem_op = 0.025e-6)
    ?(word_bytes = 8) ?(tree_collectives = true) ?(strict_validity = true)
    ?(record_trace = false) ?faults ?trace ?(domains = 1) ?safe_window ~nprocs () =
  { nprocs; alpha; beta; flop; mem_op; word_bytes; tree_collectives;
    strict_validity; record_trace; faults; trace; domains; safe_window }

let message_cost t bytes = t.alpha +. (t.beta *. float_of_int bytes)

(* Broadcast of [bytes] from one root to all: log-tree when enabled. *)
let bcast_cost t bytes =
  if t.nprocs <= 1 then 0.0
  else
    let stages =
      if t.tree_collectives then
        int_of_float (Float.ceil (Float.log2 (float_of_int t.nprocs)))
      else t.nprocs - 1
    in
    float_of_int stages *. message_cost t bytes

let pp ppf t =
  Fmt.pf ppf "P=%d alpha=%.1fus beta=%.3fus/B flop=%.3fus" t.nprocs
    (t.alpha *. 1e6) (t.beta *. 1e6) (t.flop *. 1e6)
