(* Remap planning shared by the sequential scheduler and the parallel
   generation phase ({!Pdes}).

   [plan_remap] performs the global data movement of a dynamic
   redistribution — planning element moves from the old layout, switching
   layouts everywhere, applying the copies — and returns the
   {!Eff.remap_summary} the scheduler's time/stats accounting consumes.
   Keeping one copy of this logic is what makes the parallel scheduler's
   replayed accounting bit-identical to the sequential path. *)

open Fd_support

(* The per-processor release cost of a remap: one message startup per
   partner pair plus the per-byte cost of everything sent and received.
   Shared verbatim between the sequential commit and generation's shadow
   clocks, so both compute the same floats in the same order. *)
let remap_cost ~alpha ~beta (s : Eff.remap_summary) p =
  if not s.Eff.rs_mark_only then
    (float_of_int s.Eff.rs_npairs.(p) *. alpha)
    +. (beta *. float_of_int (s.Eff.rs_sent.(p) + s.Eff.rs_received.(p)))
  else 0.0

let plan_remap ~nprocs ~word_bytes ~(objs : Storage.array_obj option array)
    ~(obj0 : Storage.array_obj) ~(new_layout : Layout.t) ~(move : bool) :
    Eff.remap_summary =
  let old_layout = obj0.Storage.layout in
  let old_owned = Layout.owned old_layout ~nprocs in
  let new_owned = Layout.owned new_layout ~nprocs in
  let sent = Array.make nprocs 0 and received = Array.make nprocs 0 in
  let partners = Hashtbl.create 16 in
  let moves = ref [] in
  (* plan the data movement before touching layouts *)
  if move then
    Storage.iter_elements obj0 (fun idx _flat ->
        let dim_index d = idx.(d) in
        let old_owner =
          match old_layout.Layout.dist_dim with
          | None -> 0  (* replicated: processor 0 is as authoritative as any *)
          | Some d -> Layout.owner_of old_layout ~nprocs (dim_index d)
        in
        for r = 0 to nprocs - 1 do
          let needs =
            match new_layout.Layout.dist_dim with
            | None -> true
            | Some d -> Iset.mem (dim_index d) new_owned.(r)
          in
          let had =
            match old_layout.Layout.dist_dim with
            | None -> true
            | Some d -> Iset.mem (dim_index d) old_owned.(r)
          in
          if needs && not had then begin
            let src_obj =
              match objs.(old_owner) with
              | Some o -> o
              | None ->
                Diag.internal ~pass:"simulate"
                  "remap: old owner p%d has no storage object" old_owner
            in
            let v =
              Storage.get_raw src_obj (Storage.flat_index src_obj idx)
            in
            moves := (r, Array.copy idx, v) :: !moves;
            sent.(old_owner) <- sent.(old_owner) + word_bytes;
            received.(r) <- received.(r) + word_bytes;
            let prev =
              Option.value ~default:0 (Hashtbl.find_opt partners (old_owner, r))
            in
            Hashtbl.replace partners (old_owner, r) (prev + word_bytes)
          end
        done);
  (* switch layouts everywhere (resets validity to new ownership) *)
  Array.iter
    (function
      | Some obj -> Storage.set_layout ~nprocs obj new_layout
      | None ->
        Diag.internal ~pass:"simulate" "remap: a processor has no storage object")
    objs;
  (* apply the planned copies *)
  List.iter
    (fun (r, idx, v) ->
      match objs.(r) with
      | Some obj -> Storage.receive obj idx v
      | None ->
        Diag.internal ~pass:"simulate" "remap: receiver p%d has no storage object"
          r)
    !moves;
  let npairs = Array.make nprocs 0 in
  Hashtbl.iter
    (fun (q, r) _bytes ->
      npairs.(q) <- npairs.(q) + 1;
      npairs.(r) <- npairs.(r) + 1)
    partners;
  let total_bytes = Array.fold_left ( + ) 0 sent in
  (* Hashtbl iteration order is unspecified: sort the partner pairs so
     traces are deterministic run-to-run. *)
  let pairs =
    List.sort compare (Hashtbl.fold (fun k b acc -> (k, b) :: acc) partners [])
  in
  { Eff.rs_array = obj0.Storage.name; rs_total_bytes = total_bytes;
    rs_sent = sent; rs_received = received; rs_npairs = npairs;
    rs_pairs = pairs; rs_mark_only = not move }
