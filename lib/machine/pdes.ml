(* Parallel generation phase of the domains scheduler (conservative PDES).

   The scheduler's results must be bit-identical whether it runs on 1
   domain or N, so parallel simulation is split into two phases:

   Phase 1 (this module, [generate]): the real per-processor
   interpreters run as effect-handler coroutines sharded across OCaml 5
   domains.  A "ghost" handler maintains shadow clocks and channels just
   far enough to deliver real message values and decide fault fates, and
   records each processor's *action stream*: the exact sequence of
   effects it performed, with the compute costs and interpreter-level
   trace events attached to each action.  A safe-window barrier batches
   processors whose clocks fall within the lookahead bound (alpha, or
   [Config.safe_window]) so domains advance concurrently.

   Phase 2 ({!Scheduler}): the unmodified sequential scheduler loop runs
   scripted players that re-perform each recorded action as a real
   {!Eff} effect.  Because phase 2 *is* the sequential algorithm —
   re-stamping sequence numbers, recomputing every clock with the same
   float operations in the same order, re-deciding every fault fate from
   the same pure hash — its Stats, trace ring, and outputs are
   bit-identical to a domains=1 run by construction.

   Why the streams are schedule-independent (the Kahn-network argument):
   a receive names its (src, tag) explicitly and per-channel delivery is
   strict sequence order from a single sender, so the values any
   processor observes — and therefore every action it takes — do not
   depend on the interleaving.  The safe window is purely a batching
   policy; no correctness claim rests on it. *)

open Fd_support
open Effect.Deep

module Tr = Fd_trace.Trace

(* --- Recorded actions -------------------------------------------------- *)

type action = {
  a_flops : int;   (* flop count charged since the previous action *)
  a_mems : int;    (* memory-op count charged since the previous action *)
  a_emits : Tr.ev list;
      (* interpreter-level trace events (owner-guard skips) emitted since
         the previous action, oldest first; replayed verbatim *)
  a_op : op;
}

and op =
  | A_tick of float  (* the Tick effect's argument, pre-slowdown *)
  | A_send of Message.t  (* seq reset to 0 and payload stripped: the
                            replay network layer re-stamps and re-prices *)
  | A_recv of { src : int; tag : int; loc : Loc.t }
  | A_coll of { site : int; op : Eff.coll_op; loc : Loc.t;
                post : (int * int) ref }
      (* [op] is the scripted replay op (payloads from shared cells the
         performer fills); [post] carries the broadcast root's read()
         compute deltas, applied by the replay at perform time *)
  | A_output of string
  | A_done           (* the processor's computation returned *)
  | A_raise of exn   (* the computation raised; replay re-raises *)

type result = {
  scripts : action list array;   (* per-processor action streams *)
  frames : Interp.frame option array;
  g_exhausted : string option;
      (* per-processor budget reason, if generation truncated a stream *)
}

(* --- Engine state ------------------------------------------------------ *)

exception Gen_halt of string
(* Raised when a processor's per-processor budget trips or the watchdog
   fires during generation: the stream simply ends; the replay phase
   reproduces the sequential outcome (global Budget_stop / Watchdog). *)

type g_outcome =
  | G_done of Interp.frame
  | G_raised of exn
  | G_halted of string
  | G_paused of (unit, g_outcome) continuation  (* safe-window boundary *)
  | G_blocked_recv of { src : int; tag : int;
                        k : (Message.t, g_outcome) continuation }
  | G_blocked_coll of { site : int; op : Eff.coll_op; loc : Loc.t;
                        k : (unit, g_outcome) continuation }

type status =
  | Runnable  (* queued or running on its domain *)
  | Paused of (unit, g_outcome) continuation
  | Parked_recv of { src : int; tag : int;
                     k : (Message.t, g_outcome) continuation }
  | Parked_coll
  | Finished

type pstate = {
  proc : int;
  dom : int;
  shadow : Stats.t;
      (* private shadow: only clocks.(proc) / flops / mem_ops are live.
         Per-processor (not per-domain) so compute attribution in the
         recorded streams is exact *)
  mutable emitted : Tr.ev list;  (* captured interp emissions, reversed *)
  mutable fl_mark : int;
  mutable mem_mark : int;
  mutable acts : action list;    (* reversed *)
  mutable status : status;
  mutable frame : Interp.frame option;
  pbudget : Budget.state option;
      (* fresh per-processor budget at the *full* limits: one
         processor's usage is <= the ensemble total, so for step/event
         budgets the replay always trips before any stream runs dry *)
  mutable halt_reason : string option;
}

type gchan = {
  mutable send_seq : int;
  mutable deliver_seq : int;
  pending : (int, Message.t * float) Hashtbl.t;
}

type gsite = {
  mutable members : (int * Eff.coll_op * (unit, g_outcome) continuation) list;
  mutable posts : (int * (int * int) ref) list;
  bc_cell : ((int array * Value.t) list, exn) Stdlib.result option ref;
  rm_cell : (Eff.remap_summary, exn) Stdlib.result option ref;
}

type engine = {
  config : Config.t;
  nprocs : int;
  ndoms : int;
  procs : pstate array;
  channels : (int * int * int, gchan) Hashtbl.t;
  colls : (int, gsite) Hashtbl.t;
  queues : (int * (unit -> g_outcome)) Queue.t array;  (* one per domain *)
  net_mu : Mutex.t;
      (* one lock over channels / parking / collective membership /
         run queues; communication events are rare next to compute, so
         a single lock is not the bottleneck (sharding it is future
         work, noted in DESIGN.md 6h) *)
  bar_mu : Mutex.t;
  bar_cv : Condition.t;
  mutable arrived : int;
  mutable round : int;
  mutable stop : bool;
  mutable window_hi : float;
      (* this round's safe-window ceiling; written only by the
         coordinator while every worker waits at the barrier *)
  mutable failed : bool;
      (* a collective failed during generation (mixed site, missing
         root, poisoned payload): stop generating; the replay phase
         reproduces the sequential error *)
}

let with_net e f =
  Mutex.lock e.net_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.net_mu) f

let clockv st = st.shadow.Stats.clocks.(st.proc)

let gchan e key =
  match Hashtbl.find_opt e.channels key with
  | Some c -> c
  | None ->
    let c = { send_seq = 0; deliver_seq = 0; pending = Hashtbl.create 4 } in
    Hashtbl.replace e.channels key c;
    c

let gsite_of e site =
  match Hashtbl.find_opt e.colls site with
  | Some s -> s
  | None ->
    let s = { members = []; posts = []; bc_cell = ref None; rm_cell = ref None } in
    Hashtbl.replace e.colls site s;
    s

let gslowdown e p =
  match e.config.Config.faults with
  | Some plan -> Fault.slowdown_for plan p
  | None -> 1.0

(* Mirror of {!Scheduler.set_clock} against the shadow clock: same
   update, same watchdog condition, but budget/watchdog trips only end
   this stream — the replay phase re-raises the real error at the same
   action. *)
let gen_set_clock e st clock =
  (match st.pbudget with
  | Some b when not (Budget.tick_step b 1) ->
    raise
      (Gen_halt (Option.value ~default:"budget exhausted" (Budget.exhausted b)))
  | _ -> ());
  st.shadow.Stats.clocks.(st.proc) <- clock;
  match e.config.Config.faults with
  | Some { Fault.watchdog = Some limit; _ } when clock > limit ->
    raise (Gen_halt "watchdog")
  | _ -> ()

let gen_charge_event st =
  match st.pbudget with
  | Some b when not (Budget.tick_event b 1) ->
    raise
      (Gen_halt (Option.value ~default:"budget exhausted" (Budget.exhausted b)))
  | _ -> ()

let push_action st aop =
  let emits = List.rev st.emitted in
  st.emitted <- [];
  let fl = st.shadow.Stats.flops - st.fl_mark in
  let mm = st.shadow.Stats.mem_ops - st.mem_mark in
  st.fl_mark <- st.shadow.Stats.flops;
  st.mem_mark <- st.shadow.Stats.mem_ops;
  st.acts <- { a_flops = fl; a_mems = mm; a_emits = emits; a_op = aop } :: st.acts

let take_deliverable ch =
  match Hashtbl.find_opt ch.pending ch.deliver_seq with
  | Some (msg, arrival) ->
    Hashtbl.remove ch.pending ch.deliver_seq;
    ch.deliver_seq <- ch.deliver_seq + 1;
    Some (msg, arrival)
  | None -> None

(* Insert an arrival; wake a parked receiver (same conditions as the
   sequential [insert_arrival], minus stats — replay recomputes them).
   Caller holds net_mu. *)
let rec ginsert_locked e (msg : Message.t) arrival =
  let ch = gchan e (msg.Message.src, msg.Message.dest, msg.Message.tag) in
  if msg.Message.seq < ch.deliver_seq || Hashtbl.mem ch.pending msg.Message.seq
  then ()  (* duplicate: dropped; the replay counts it *)
  else begin
    Hashtbl.replace ch.pending msg.Message.seq (msg, arrival);
    if msg.Message.seq = ch.deliver_seq then begin
      let std = e.procs.(msg.Message.dest) in
      match std.status with
      | Parked_recv { src; tag; k }
        when src = msg.Message.src && tag = msg.Message.tag ->
        std.status <- Runnable;
        Queue.add (std.proc, resume_recv e std src tag k) e.queues.(std.dom)
      | _ -> ()
    end
  end

and resume_recv e st src tag k : unit -> g_outcome =
  fun () ->
    let delivery =
      with_net e (fun () -> take_deliverable (gchan e (src, st.proc, tag)))
    in
    match delivery with
    | None -> G_blocked_recv { src; tag; k }  (* spurious; drain reparks *)
    | Some (msg, arrival) -> (
      match
        let before = clockv st in
        gen_set_clock e st (Float.max before arrival)
      with
      | () -> continue k msg
      | exception Gen_halt r -> G_halted r)

(* Mirror of the sequential [transmit]: same sequence stamping, same
   clock/arrival float expressions in the same order, same pure fault
   fate — so generation's shadow clocks equal the replay's clocks at
   every corresponding point. *)
let gen_transmit e st (msg : Message.t) =
  gen_charge_event st;
  let seq =
    with_net e (fun () ->
        let ch =
          gchan e (msg.Message.src, msg.Message.dest, msg.Message.tag)
        in
        let s = ch.send_seq in
        ch.send_seq <- s + 1;
        s)
  in
  let msg = { msg with Message.seq = seq } in
  gen_set_clock e st (clockv st +. e.config.Config.alpha);
  let base_arrival =
    clockv st +. (e.config.Config.beta *. float_of_int msg.Message.bytes)
  in
  match e.config.Config.faults with
  | None -> with_net e (fun () -> ginsert_locked e msg base_arrival)
  | Some plan ->
    let d =
      Fault.deliver plan
        ~msg_cost:(Config.message_cost e.config msg.Message.bytes)
        ~src:msg.Message.src ~dest:msg.Message.dest ~tag:msg.Message.tag ~seq
    in
    if d.Fault.lost then ()
    else begin
      let arrival = base_arrival +. d.Fault.added_delay in
      with_net e (fun () ->
          ginsert_locked e msg arrival;
          if d.Fault.duplicated then
            ginsert_locked e msg (arrival +. e.config.Config.alpha))
    end

(* Run one processor under the generation (ghost) handler. *)
let grun e st (f : unit -> Interp.frame) : g_outcome =
  match_with f ()
    { retc = (fun frame -> G_done frame);
      exnc = (fun ex -> G_raised ex);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Eff.Tick dt ->
            Some
              (fun (k : (a, g_outcome) continuation) ->
                push_action st (A_tick dt);
                let dt = dt *. gslowdown e st.proc in
                match gen_set_clock e st (clockv st +. dt) with
                | () ->
                  if clockv st > e.window_hi then G_paused k else continue k ()
                | exception Gen_halt r -> G_halted r)
          | Eff.Send msg ->
            Some
              (fun (k : (a, g_outcome) continuation) ->
                push_action st
                  (A_send { msg with Message.seq = 0; elems = [] });
                match gen_transmit e st msg with
                | () ->
                  if clockv st > e.window_hi then G_paused k else continue k ()
                | exception Gen_halt r -> G_halted r)
          | Eff.Recv (src, tag, loc) ->
            Some
              (fun (k : (a, g_outcome) continuation) ->
                push_action st (A_recv { src; tag; loc });
                let delivery =
                  with_net e (fun () ->
                      take_deliverable (gchan e (src, st.proc, tag)))
                in
                match delivery with
                | Some (msg, arrival) -> (
                  match
                    let before = clockv st in
                    gen_set_clock e st (Float.max before arrival)
                  with
                  | () -> continue k msg
                  | exception Gen_halt r -> G_halted r)
                | None -> G_blocked_recv { src; tag; k })
          | Eff.Collective (site, op, loc) ->
            Some
              (fun (k : (a, g_outcome) continuation) ->
                G_blocked_coll { site; op; loc; k })
          | Eff.Output line ->
            Some
              (fun (k : (a, g_outcome) continuation) ->
                push_action st (A_output line);
                continue k ())
          | _ -> None) }

(* --- Collectives at generation time ------------------------------------ *)

(* Build the scripted replay op a participant's A_coll records: payloads
   come from the site's shared cells, filled when the collective
   performs (or poisoned with the exception it hit). *)
let scripted_op gs (op : Eff.coll_op) : Eff.coll_op =
  match op with
  | Eff.Coll_bcast { root; label; _ } ->
    let cell = gs.bc_cell in
    let read () =
      match !cell with
      | Some (Ok elems) -> elems
      | Some (Error ex) -> raise ex
      | None ->
        Diag.internal ~pass:"simulate" "replayed broadcast payload missing"
    in
    Eff.Coll_bcast { root; label; read; write = ignore }
  | Eff.Coll_remap { obj; _ } ->
    Eff.Coll_replay_remap { label = obj.Storage.name; summary = gs.rm_cell }
  | Eff.Coll_replay_remap _ ->
    Diag.internal ~pass:"simulate" "replay op performed during generation"

let wake e (st : pstate) k =
  st.status <- Runnable;
  Queue.add (st.proc, fun () -> continue k ()) e.queues.(st.dom)

(* Perform a completed collective.  Caller holds net_mu; every other
   processor is parked at this site, so touching their storage, shadow
   clocks, and budgets is race-free.  Classification errors are not
   raised here: generation just stops ([failed]) and the replay phase
   reproduces the exact sequential error from the scripted ops. *)
let perform_gcoll e site gs =
  Hashtbl.remove e.colls site;
  let parts = List.rev gs.members in
  let tmax () =
    List.fold_left
      (fun acc (p, _, _) -> Float.max acc (clockv e.procs.(p)))
      0.0 parts
  in
  let release_all per_proc_release =
    List.iter
      (fun (p, op, k) ->
        let stp = e.procs.(p) in
        match gen_set_clock e stp (per_proc_release p) with
        | () ->
          (match op with
          | Eff.Coll_bcast { root; write; _ } -> (
            match !(gs.bc_cell) with
            | Some (Ok elems) -> if p <> root then write elems
            | _ -> ())
          | _ -> ());
          wake e stp k
        | exception Gen_halt r ->
          stp.halt_reason <- Some r;
          stp.status <- Finished)
      parts
  in
  match parts with
  | (_, Eff.Coll_bcast _, _) :: _ -> (
    (* order mirrors the sequential perform_bcast: root read first (its
       failure poisons the site), mixed detection during release *)
    match
      List.find_map
        (function
          | p, Eff.Coll_bcast { root; read; _ }, _ when root = p ->
            Some (p, read)
          | _ -> None)
        parts
    with
    | None -> e.failed <- true  (* replay raises "no root participant" *)
    | Some (root, read) ->
      let str = e.procs.(root) in
      let fl0 = str.shadow.Stats.flops and mm0 = str.shadow.Stats.mem_ops in
      let finish_read res =
        (* the root's read() compute lands in its A_coll's [post] so the
           replay charges it exactly where the sequential path does *)
        let dfl = str.shadow.Stats.flops - fl0
        and dmm = str.shadow.Stats.mem_ops - mm0 in
        str.fl_mark <- str.fl_mark + dfl;
        str.mem_mark <- str.mem_mark + dmm;
        (match List.assoc_opt root gs.posts with
        | Some post -> post := (dfl, dmm)
        | None -> ());
        gs.bc_cell := Some res
      in
      (match read () with
      | exception ex ->
        finish_read (Error ex);
        e.failed <- true
      | elems ->
        finish_read (Ok elems);
        let mixed =
          List.exists
            (function
              | _, (Eff.Coll_remap _ | Eff.Coll_replay_remap _), _ -> true
              | _ -> false)
            parts
        in
        if mixed then e.failed <- true
        else begin
          let bytes = List.length elems * e.config.Config.word_bytes in
          let cost = Config.bcast_cost e.config bytes in
          let release = tmax () +. cost in
          release_all (fun _ -> release)
        end))
  | (_, Eff.Coll_remap _, _) :: _ -> (
    let objs = Array.make e.nprocs None in
    let new_layout = ref None and move = ref true in
    let mixed = ref false in
    List.iter
      (fun (p, op, _) ->
        match op with
        | Eff.Coll_remap { obj; new_layout = nl; move = mv } ->
          objs.(p) <- Some obj;
          new_layout := Some nl;
          move := mv
        | _ -> mixed := true)
      parts;
    match (!mixed, !new_layout, objs.(0)) with
    | true, _, _ | _, None, _ | _, _, None -> e.failed <- true
    | false, Some nl, Some obj0 -> (
      match
        Collective.plan_remap ~nprocs:e.nprocs
          ~word_bytes:e.config.Config.word_bytes ~objs ~obj0 ~new_layout:nl
          ~move:!move
      with
      | exception ex ->
        gs.rm_cell := Some (Error ex);
        e.failed <- true
      | summary ->
        gs.rm_cell := Some (Ok summary);
        let tm = tmax () in
        release_all (fun p ->
            tm
            +. Collective.remap_cost ~alpha:e.config.Config.alpha
                 ~beta:e.config.Config.beta summary p)))
  | (_, Eff.Coll_replay_remap _, _) :: _ | [] ->
    Diag.internal ~pass:"simulate" "malformed collective site in generation"

(* --- Worker loop ------------------------------------------------------- *)

let drain e d =
  let rec loop () =
    match with_net e (fun () -> Queue.take_opt e.queues.(d)) with
    | None -> ()
    | Some (p, thunk) ->
      let st = e.procs.(p) in
      (match thunk () with
      | G_done frame ->
        push_action st A_done;
        st.frame <- Some frame;
        st.status <- Finished
      | G_raised ex ->
        push_action st (A_raise ex);
        st.status <- Finished
      | G_halted reason ->
        st.halt_reason <- Some reason;
        st.status <- Finished
      | G_paused k -> st.status <- Paused k
      | G_blocked_recv { src; tag; k } ->
        with_net e (fun () ->
            let ch = gchan e (src, p, tag) in
            if Hashtbl.mem ch.pending ch.deliver_seq then
              Queue.add (p, resume_recv e st src tag k) e.queues.(d)
            else st.status <- Parked_recv { src; tag; k })
      | G_blocked_coll { site; op; loc; k } ->
        with_net e (fun () ->
            let gs = gsite_of e site in
            let post = ref (0, 0) in
            push_action st (A_coll { site; op = scripted_op gs op; loc; post });
            gs.posts <- (p, post) :: gs.posts;
            gs.members <- (p, op, k) :: gs.members;
            st.status <- Parked_coll;
            if List.length gs.members = e.nprocs then perform_gcoll e site gs));
      loop ()
  in
  loop ()

(* Runs with every worker parked at the barrier: computes the next safe
   window W = (min clock over runnable work) + lookahead and releases
   paused processors inside it.  If nothing is runnable but paused
   processors remain, the window is ignored for one round — it is a
   batching policy, not a correctness condition — so a processor ahead
   of a deadlocked peer still drains to its own block point. *)
let coordinator e =
  Mutex.lock e.net_mu;
  let all_finished =
    Array.for_all
      (fun st -> match st.status with Finished -> true | _ -> false)
      e.procs
  in
  if e.failed || all_finished then e.stop <- true
  else begin
    let any_queued =
      Array.exists (fun q -> not (Queue.is_empty q)) e.queues
    in
    let wmin = ref infinity in
    Array.iter
      (fun st ->
        match st.status with
        | Paused _ -> wmin := Float.min !wmin (clockv st)
        | _ -> ())
      e.procs;
    Array.iter
      (fun q ->
        Queue.iter (fun (p, _) -> wmin := Float.min !wmin (clockv e.procs.(p))) q)
      e.queues;
    let look =
      match e.config.Config.safe_window with
      | Some w -> w
      | None -> e.config.Config.alpha
    in
    let hi = if !wmin = infinity then look else !wmin +. look in
    e.window_hi <- hi;
    let released = ref false in
    Array.iter
      (fun st ->
        match st.status with
        | Paused k when clockv st <= hi ->
          st.status <- Runnable;
          released := true;
          Queue.add (st.proc, (fun () -> continue k ())) e.queues.(st.dom)
        | _ -> ())
      e.procs;
    if not (any_queued || !released) then begin
      let any_paused = ref false in
      Array.iter
        (fun st ->
          match st.status with
          | Paused k ->
            any_paused := true;
            st.status <- Runnable;
            Queue.add (st.proc, (fun () -> continue k ())) e.queues.(st.dom)
          | _ -> ())
        e.procs;
      if !any_paused then e.window_hi <- infinity
      else e.stop <- true  (* quiescence: the replay diagnoses the deadlock *)
    end
  end;
  Mutex.unlock e.net_mu

let barrier e : bool =
  Mutex.lock e.bar_mu;
  e.arrived <- e.arrived + 1;
  if e.arrived = e.ndoms then begin
    coordinator e;
    e.arrived <- 0;
    e.round <- e.round + 1;
    Condition.broadcast e.bar_cv
  end
  else begin
    let r = e.round in
    while e.round = r do
      Condition.wait e.bar_cv e.bar_mu
    done
  end;
  let continue_ = not e.stop in
  Mutex.unlock e.bar_mu;
  continue_

let generate ?budget (config : Config.t) (prog : Node.program) : result =
  let nprocs = config.Config.nprocs in
  let ndoms = max 1 (min config.Config.domains nprocs) in
  let look =
    match config.Config.safe_window with
    | Some w -> w
    | None -> config.Config.alpha
  in
  let procs =
    Array.init nprocs (fun p ->
        { proc = p; dom = p * ndoms / nprocs; shadow = Stats.create nprocs;
          emitted = []; fl_mark = 0; mem_mark = 0; acts = [];
          status = Runnable; frame = None;
          pbudget = Option.map Budget.start budget; halt_reason = None })
  in
  let e =
    { config; nprocs; ndoms; procs;
      channels = Hashtbl.create 64;
      colls = Hashtbl.create 8;
      queues = Array.init ndoms (fun _ -> Queue.create ());
      net_mu = Mutex.create ();
      bar_mu = Mutex.create ();
      bar_cv = Condition.create ();
      arrived = 0; round = 0; stop = false; window_hi = look; failed = false }
  in
  for p = 0 to nprocs - 1 do
    let st = procs.(p) in
    (* each interpreter gets a private config: its own shadow stats and,
       when tracing is on, a sink ring that captures its guard-skip
       emissions into the action stream *)
    let iconfig =
      match config.Config.trace with
      | None -> { config with Config.domains = 1 }
      | Some _ ->
        let sink ev = st.emitted <- ev :: st.emitted in
        { config with
          Config.domains = 1;
          trace = Some (Tr.create ~capacity:1 ~sink ()) }
    in
    let interp = Interp.create ~proc:p ~config:iconfig ~stats:st.shadow prog in
    Queue.add (p, fun () -> grun e st (fun () -> Interp.run_main interp))
      e.queues.(st.dom)
  done;
  let worker d () =
    let rec loop () =
      drain e d;
      if barrier e then loop ()
    in
    loop ()
  in
  let others = Array.init (ndoms - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join others;
  let g_exhausted =
    Array.fold_left
      (fun acc st -> match acc with Some _ -> acc | None -> st.halt_reason)
      None procs
  in
  { scripts = Array.map (fun st -> List.rev st.acts) procs;
    frames = Array.map (fun st -> st.frame) procs;
    g_exhausted }
