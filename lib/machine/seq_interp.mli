(** Sequential reference interpreter for checked mini-Fortran-D programs.
    ALIGN/DISTRIBUTE are no-ops; arrays are global.  Ground truth for
    verifying compiled SPMD executions, and the one-processor time
    estimate. *)

open Fd_frontend

type result = {
  arrays : (string * Storage.array_obj) list;  (** main-program arrays *)
  outputs : string list;
  flops : int;
  mem_ops : int;
  seq_time : float;  (** estimated sequential execution time *)
}

val run :
  ?config:Config.t ->
  ?on_branch:(Fd_support.Loc.t -> bool -> unit) ->
  Sema.checked_program ->
  result
(** [on_branch] observes every source-IF decision as [(loc, taken)],
    keyed by the IF statement's location.  The static cost analyzer uses
    the aggregated profile to assign execution multiplicities to
    unverifiable regions ({!Fd_verify.Absint.region}). *)
