(** Machine model for the MIMD distributed-memory simulator.

    The default numbers approximate the Intel iPSC/860 the paper's group
    reported against: ~75 us message startup, ~0.4 us/byte, a few
    hundredths of a microsecond per operation.  Times are in seconds. *)

type t = {
  nprocs : int;
  alpha : float;        (** message startup cost *)
  beta : float;         (** per-byte transfer cost *)
  flop : float;         (** per arithmetic-operation cost *)
  mem_op : float;       (** per load/store cost *)
  word_bytes : int;     (** bytes per REAL/INTEGER element *)
  tree_collectives : bool;  (** log-tree broadcast vs sequential sends *)
  strict_validity : bool;
      (** abort on reads of non-owned, never-received elements (catches
          missing communication even when stale values agree) *)
  record_trace : bool;
      (** record a communication-event timeline in {!Stats} *)
  faults : Fault.t option;
      (** deterministic adversarial-network plan (drop / duplicate /
          delay / slowdown); [None] models the perfectly reliable iPSC
          network and is byte-identical to the pre-fault simulator *)
  trace : Fd_trace.Trace.t option;
      (** structured event sink ({!Fd_trace.Trace}); [None] disables
          tracing at zero cost (producers emit through one option match) *)
  domains : int;
      (** OCaml domains the scheduler shards processors across; [1]
          (the default) takes the sequential path and any [N] produces
          bit-identical {!Stats}, trace, and output *)
  safe_window : float option;
      (** conservative-PDES lookahead window in seconds; [None] uses
          [alpha].  Purely a batching knob — results are independent of
          its value *)
}

val ipsc860 : ?nprocs:int -> unit -> t

val make :
  ?alpha:float -> ?beta:float -> ?flop:float -> ?mem_op:float ->
  ?word_bytes:int -> ?tree_collectives:bool -> ?strict_validity:bool ->
  ?record_trace:bool -> ?faults:Fault.t -> ?trace:Fd_trace.Trace.t ->
  ?domains:int -> ?safe_window:float ->
  nprocs:int -> unit -> t

val message_cost : t -> int -> float
(** [alpha + beta * bytes]. *)

val bcast_cost : t -> int -> float
(** One-to-all cost: log-tree stages when enabled, sequential otherwise. *)

val pp : Format.formatter -> t -> unit
