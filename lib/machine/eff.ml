(* Effects performed by node-program interpreters and handled by the
   scheduler.  Each logical processor runs as a delimited computation;
   communication suspends it until the scheduler can satisfy the
   request. *)

open Fd_support

(* Everything the scheduler's remap accounting consumes, captured once
   so the parallel scheduler's replay phase can re-price a remap without
   re-planning the data movement (which already happened). *)
type remap_summary = {
  rs_array : string;
  rs_total_bytes : int;
  rs_sent : int array;       (* per-processor bytes sent *)
  rs_received : int array;   (* per-processor bytes received *)
  rs_npairs : int array;     (* per-processor partner-pair count *)
  rs_pairs : ((int * int) * int) list;  (* sorted ((src, dest), bytes) *)
  rs_mark_only : bool;
}

type coll_op =
  | Coll_bcast of {
      root : int;
      label : string;
      read : unit -> (int array * Value.t) list;  (* meaningful on the root *)
      write : (int array * Value.t) list -> unit; (* stores into my memory *)
    }
  | Coll_remap of {
      obj : Storage.array_obj;  (* my copy of the array *)
      new_layout : Layout.t;
      move : bool;
    }
  | Coll_replay_remap of {
      label : string;  (* array name, for diagnostics before completion *)
      summary : (remap_summary, exn) result option ref;
          (* filled when the generation phase performed the remap; [Error]
             poisons the site with the exception generation hit *)
    }

type _ Effect.t +=
  | Tick : float -> unit Effect.t
  | Send : Message.t -> unit Effect.t
  | Recv : (int * int * Loc.t) -> Message.t Effect.t  (* src, tag, source loc *)
  | Collective : (int * coll_op * Loc.t) -> unit Effect.t  (* site, op, source loc *)
  | Output : string -> unit Effect.t

let tick dt = if dt > 0.0 then Effect.perform (Tick dt)
let send msg = Effect.perform (Send msg)
let recv ~src ~tag ~loc = Effect.perform (Recv (src, tag, loc))
let collective ~site ~loc op = Effect.perform (Collective (site, op, loc))
let output line = Effect.perform (Output line)
