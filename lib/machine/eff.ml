(* Effects performed by node-program interpreters and handled by the
   scheduler.  Each logical processor runs as a delimited computation;
   communication suspends it until the scheduler can satisfy the
   request. *)

open Fd_support

type coll_op =
  | Coll_bcast of {
      root : int;
      label : string;
      read : unit -> (int array * Value.t) list;  (* meaningful on the root *)
      write : (int array * Value.t) list -> unit; (* stores into my memory *)
    }
  | Coll_remap of {
      obj : Storage.array_obj;  (* my copy of the array *)
      new_layout : Layout.t;
      move : bool;
    }

type _ Effect.t +=
  | Tick : float -> unit Effect.t
  | Send : Message.t -> unit Effect.t
  | Recv : (int * int * Loc.t) -> Message.t Effect.t  (* src, tag, source loc *)
  | Collective : (int * coll_op * Loc.t) -> unit Effect.t  (* site, op, source loc *)
  | Output : string -> unit Effect.t

let tick dt = if dt > 0.0 then Effect.perform (Tick dt)
let send msg = Effect.perform (Send msg)
let recv ~src ~tag ~loc = Effect.perform (Recv (src, tag, loc))
let collective ~site ~loc op = Effect.perform (Collective (site, op, loc))
let output line = Effect.perform (Output line)
