(* Data layouts: how one array dimension is partitioned across the P
   logical processors.  At most one dimension of an array is distributed
   (the paper's examples use 1-D distributions; see DESIGN.md). *)

open Fd_support

type dist1 =
  | Block of int         (* block size *)
  | Cyclic
  | Block_cyclic of int  (* block size; blocks dealt round-robin *)
  | Replicated

type t = {
  bounds : (int * int) list;  (* declared global bounds per dimension *)
  dist_dim : int option;      (* 0-based distributed dimension *)
  dist : dist1;
}

let replicated bounds = { bounds; dist_dim = None; dist = Replicated }

let rank t = List.length t.bounds

let extent (lo, hi) = hi - lo + 1

let dim_bounds t d = List.nth t.bounds d

(* Default block size: ceil(N / P). *)
let block_size_for ~nprocs (lo, hi) = (extent (lo, hi) + nprocs - 1) / nprocs

(* Per-processor owned global indices in the distributed dimension.  For
   replicated layouts every processor owns the full extent of dimension 0
   (the choice of dimension is immaterial). *)
(* One processor's owned set, computed on demand.  [owned t ~nprocs] is
   [Array.init nprocs (owned_one t ~nprocs)] but the array form costs
   O(P) per call — the compressed verifier (P up to 65536) asks for
   single lanes and parametric descriptions instead. *)
let owned_one t ~nprocs p =
  match t.dist_dim with
  | None ->
    let lo, hi = List.nth t.bounds 0 in
    Iset.range lo hi
  | Some d ->
    let lo, hi = dim_bounds t d in
    (match t.dist with
    | Replicated -> Iset.range lo hi
    | Block b ->
      let plo = lo + (p * b) and phi = min hi (lo + ((p + 1) * b) - 1) in
      if phi < plo then Iset.empty
      else Iset.of_triplet (Triplet.make ~lo:plo ~hi:phi ~step:1)
    | Cyclic ->
      if lo + p > hi then Iset.empty
      else Iset.of_triplet (Triplet.make ~lo:(lo + p) ~hi ~step:nprocs)
    | Block_cyclic b ->
      let sets = ref Iset.empty in
      let blk = ref (lo + (p * b)) in
      while !blk <= hi do
        let bhi = min hi (!blk + b - 1) in
        sets := Iset.union !sets (Iset.range !blk bhi);
        blk := !blk + (nprocs * b)
      done;
      !sets)

let owned t ~nprocs : Iset.t array = Array.init nprocs (owned_one t ~nprocs)

(* Owner of global index [g] in the distributed dimension; 0 when the
   array is replicated (every processor owns it; caller should check). *)
let owner_of t ~nprocs g =
  match (t.dist_dim, t.dist) with
  | None, _ | _, Replicated -> 0
  | Some d, Block b ->
    let lo, _ = dim_bounds t d in
    min (nprocs - 1) ((g - lo) / b)
  | Some d, Cyclic ->
    let lo, _ = dim_bounds t d in
    (g - lo) mod nprocs
  | Some d, Block_cyclic b ->
    let lo, _ = dim_bounds t d in
    (g - lo) / b mod nprocs

let is_replicated t = t.dist_dim = None || t.dist = Replicated

let equal a b = a.bounds = b.bounds && a.dist_dim = b.dist_dim && a.dist = b.dist

let dist_name = function
  | Block b -> Fmt.str "block(%d)" b
  | Cyclic -> "cyclic"
  | Block_cyclic b -> Fmt.str "block_cyclic(%d)" b
  | Replicated -> "replicated"

let pp ppf t =
  match t.dist_dim with
  | None -> Fmt.string ppf "replicated"
  | Some d -> Fmt.pf ppf "dim %d %s" (d + 1) (dist_name t.dist)

let to_string t = Fmt.str "%a" pp t
