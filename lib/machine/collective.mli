(** Remap planning shared by the sequential scheduler and the parallel
    generation phase ({!Pdes}): one copy of the data-movement plan and
    the per-processor cost formula, so the parallel scheduler's replayed
    accounting is bit-identical to the sequential path. *)

val remap_cost : alpha:float -> beta:float -> Eff.remap_summary -> int -> float
(** Release cost of a remap for processor [p]: one message startup per
    partner pair plus the per-byte cost of bytes sent and received;
    [0.0] for mark-only remaps. *)

val plan_remap :
  nprocs:int -> word_bytes:int ->
  objs:Storage.array_obj option array ->
  obj0:Storage.array_obj ->
  new_layout:Layout.t -> move:bool -> Eff.remap_summary
(** Perform a redistribution's global data movement (plan element moves
    under the old layout, switch every processor's layout, apply the
    copies) and return the summary the scheduler's accounting consumes.
    [objs] must hold every processor's copy; [obj0] is processor 0's. *)
