(** Execution statistics for one simulated run. *)

type event =
  | Ev_send of { at : float; src : int; dest : int; tag : int; bytes : int }
  | Ev_recv of { at : float; src : int; dest : int; tag : int; waited : float }
  | Ev_bcast of { at : float; root : int; bytes : int; site : int }
  | Ev_remap of { at : float; array : string; moved_bytes : int; mark_only : bool }
  | Ev_fault of { at : float; src : int; dest : int; tag : int; seq : int;
                  kind : string }
      (** an injected network fault: ["retransmit"], ["duplicate"],
          ["delayed"], or ["lost"] *)

type t = {
  nprocs : int;
  mutable messages : int;        (** point-to-point messages *)
  mutable message_bytes : int;
  mutable bcasts : int;
  mutable bcast_bytes : int;
  mutable remaps : int;          (** physical remap operations *)
  mutable remap_marks : int;     (** mark-only remaps (array-kill opt.) *)
  mutable remap_bytes : int;
  mutable flops : int;
  mutable mem_ops : int;
  mutable max_wait : float;
      (** longest single receive wait (seconds), over all processors *)
  mutable faults_injected : int;
      (** fault events applied by the {!Fault} plan (drops, duplicates,
          jitter, reorders); 0 on a reliable network *)
  mutable retransmits : int;
      (** recovery retransmissions performed by the ack/retransmit layer *)
  mutable duplicates_dropped : int;
      (** duplicate copies discarded by sequence-number dedup *)
  mutable messages_lost : int;
      (** messages undeliverable after [max_retries] retransmissions *)
  mutable fault_delay : float;
      (** total extra arrival latency injected (timeouts + jitter), s *)
  mutable watchdog_fired : bool;
      (** the virtual-time watchdog aborted the run *)
  clocks : float array;          (** per-processor virtual time, seconds *)
  busy : float array;            (** per-processor compute time *)
  mutable outputs : (int * string) list;  (** (proc, line), reversed *)
  mutable trace : event list;
      (** reversed; recorded only under {!Config.t.record_trace} *)
}

val create : int -> t

val elapsed : t -> float
(** Makespan: max over processor clocks. *)

val total_busy : t -> float
val comm_ops : t -> int

val outputs : t -> string list
(** Captured PRINT lines, in order. *)

val trace : t -> event list
(** Communication timeline, in order (empty unless recording). *)

val to_json : t -> Fd_support.Json.t
(** The full record as JSON: counters, [elapsed], [max_wait], per-proc
    [clocks]/[busy] and captured outputs — the canonical serialization
    used by [fdc run --json] and the bench scrapers. *)

val to_metrics : t -> Fd_trace.Metrics.t
(** The same counters as {!to_json}, published through the
    {!Fd_trace.Metrics} registry (counters for totals, gauges for
    times), so simulator statistics and trace-derived histograms share
    one serialization. *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
