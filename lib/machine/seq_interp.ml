(* Sequential reference interpreter for checked mini-Fortran-D programs.
   ALIGN/DISTRIBUTE are no-ops; arrays are global.  Used as ground truth
   for verifying compiled SPMD executions, and as the baseline
   "one-processor" time estimate. *)

open Fd_support
open Fd_frontend

exception Return_signal

type binding = Bscalar of Value.t ref | Barray of Storage.array_obj

type frame = (string, binding) Hashtbl.t

type result = {
  arrays : (string * Storage.array_obj) list;  (* main-program arrays *)
  outputs : string list;
  flops : int;
  mem_ops : int;
  seq_time : float;  (* estimated sequential execution time *)
}

type t = {
  cp : Sema.checked_program;
  config : Config.t;
  globals : frame;  (* COMMON storage *)
  mutable frames : frame list;
  mutable flops : int;
  mutable mem_ops : int;
  mutable outputs : string list;
  on_branch : (Loc.t -> bool -> unit) option;
      (* observer for every source-IF decision, keyed by statement loc *)
}

let current_frame t = List.hd t.frames

let implicit_zero name =
  if String.length name > 0 && name.[0] >= 'i' && name.[0] <= 'n' then Value.Vint 0
  else Value.Vreal 0.0

let lookup t name =
  let frame = current_frame t in
  match Hashtbl.find_opt frame name with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt t.globals name with
    | Some b -> b
    | None ->
      let b = Bscalar (ref (implicit_zero name)) in
      Hashtbl.replace frame name b;
      b)

let scalar_cell t name =
  match lookup t name with
  | Bscalar r -> r
  | Barray _ -> Diag.error "array %s used as scalar" name

let array_obj t name =
  match lookup t name with
  | Barray o -> o
  | Bscalar _ -> Diag.error "scalar %s used as array" name

let rec eval t (symtab : Symtab.t) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int_const n -> Value.Vint n
  | Ast.Real_const f -> Value.Vreal f
  | Ast.Logical_const b -> Value.Vbool b
  | Ast.Var v -> (
    match Symtab.param_value symtab v with
    | Some n -> Value.Vint n
    | None -> (
      match lookup t v with
      | Bscalar r -> !r
      | Barray _ -> Diag.error "whole array %s used as value" v))
  | Ast.Ref (name, subs) ->
    let obj = array_obj t name in
    let idx = Array.of_list (List.map (fun s -> Value.to_int (eval t symtab s)) subs) in
    t.mem_ops <- t.mem_ops + 1;
    Storage.read ~strict:false obj idx
  | Ast.Bin (Ast.And, a, b) ->
    t.flops <- t.flops + 1;
    Value.Vbool (Value.to_bool (eval t symtab a) && Value.to_bool (eval t symtab b))
  | Ast.Bin (Ast.Or, a, b) ->
    t.flops <- t.flops + 1;
    Value.Vbool (Value.to_bool (eval t symtab a) || Value.to_bool (eval t symtab b))
  | Ast.Bin (op, a, b) ->
    let va = eval t symtab a and vb = eval t symtab b in
    t.flops <- t.flops + 1;
    Interp.binop op va vb
  | Ast.Un (Ast.Neg, a) ->
    t.flops <- t.flops + 1;
    Value.sub (Value.Vint 0) (eval t symtab a)
  | Ast.Un (Ast.Not, a) ->
    t.flops <- t.flops + 1;
    Value.Vbool (not (Value.to_bool (eval t symtab a)))
  | Ast.Funcall (name, args) -> intrinsic t symtab name args

and intrinsic t symtab name args =
  t.flops <- t.flops + 1;
  let v es = List.map (eval t symtab) es in
  match (name, args) with
  | "abs", [ a ] -> (
    match eval t symtab a with
    | Value.Vint i -> Value.Vint (abs i)
    | Value.Vreal f -> Value.Vreal (Float.abs f)
    | Value.Vbool _ -> Diag.error "abs of logical")
  | "sqrt", [ a ] -> Value.Vreal (sqrt (Value.to_float (eval t symtab a)))
  | "mod", [ a; b ] -> (
    match (eval t symtab a, eval t symtab b) with
    | Value.Vint x, Value.Vint y ->
      if y = 0 then Diag.error "mod by zero" else Value.Vint (x mod y)
    | x, y -> Value.Vreal (Float.rem (Value.to_float x) (Value.to_float y)))
  | "max", _ :: _ :: _ -> (
    match v args with
    | x :: rest ->
      List.fold_left (fun acc y -> if Value.compare_num y acc > 0 then y else acc) x rest
    | [] -> Diag.internal ~pass:"seq" "intrinsic %s with no arguments" name)
  | "min", _ :: _ :: _ -> (
    match v args with
    | x :: rest ->
      List.fold_left (fun acc y -> if Value.compare_num y acc < 0 then y else acc) x rest
    | [] -> Diag.internal ~pass:"seq" "intrinsic %s with no arguments" name)
  | "float", [ a ] -> Value.Vreal (Value.to_float (eval t symtab a))
  | "int", [ a ] -> Value.Vint (Value.to_int (eval t symtab a))
  | "sign", [ a; b ] -> (
    let m = Value.to_float (eval t symtab a)
    and s = Value.to_float (eval t symtab b) in
    let r = if s >= 0.0 then Float.abs m else -.Float.abs m in
    match eval t symtab a with Value.Vint _ -> Value.Vint (int_of_float r) | _ -> Value.Vreal r)
  | _ -> Diag.error "unknown intrinsic %s/%d" name (List.length args)

let rec exec t (cu : Sema.checked_unit) (s : Ast.stmt) : unit =
  let symtab = cu.Sema.symtab in
  match s.Ast.kind with
  | Ast.Assign (lhs, rhs) -> (
    let v = eval t symtab rhs in
    match lhs with
    | Ast.Var name ->
      t.mem_ops <- t.mem_ops + 1;
      let cell = scalar_cell t name in
      cell :=
        (match !cell with
        | Value.Vint _ -> Value.Vint (Value.to_int v)
        | Value.Vreal _ -> Value.Vreal (Value.to_float v)
        | Value.Vbool _ -> v)
    | Ast.Ref (name, subs) ->
      let obj = array_obj t name in
      let idx = Array.of_list (List.map (fun e -> Value.to_int (eval t symtab e)) subs) in
      t.mem_ops <- t.mem_ops + 1;
      let v =
        match obj.Storage.elt with
        | Ast.Real -> Value.Vreal (Value.to_float v)
        | Ast.Integer -> Value.Vint (Value.to_int v)
        | Ast.Logical -> v
      in
      Storage.write obj idx v
    | _ -> Diag.error "bad assignment target")
  | Ast.Do { var; lo; hi; step; body } ->
    let l = Value.to_int (eval t symtab lo) and h = Value.to_int (eval t symtab hi) in
    let st = match step with None -> 1 | Some e -> Value.to_int (eval t symtab e) in
    if st = 0 then Diag.error "zero DO step";
    let cell = scalar_cell t var in
    let continue_ x = if st > 0 then x <= h else x >= h in
    let x = ref l in
    while continue_ !x do
      cell := Value.Vint !x;
      t.flops <- t.flops + 1;
      List.iter (exec t cu) body;
      x := !x + st
    done
  | Ast.If { cond; then_; else_ } ->
    let taken = Value.to_bool (eval t symtab cond) in
    (match t.on_branch with Some f -> f s.Ast.loc taken | None -> ());
    if taken then List.iter (exec t cu) then_ else List.iter (exec t cu) else_
  | Ast.Call (name, args) -> call t name args cu
  | Ast.Align _ | Ast.Distribute _ -> ()  (* placement is advisory sequentially *)
  | Ast.Return -> raise Return_signal
  | Ast.Print args ->
    let line =
      String.concat " " (List.map (fun e -> Value.to_string (eval t symtab e)) args)
    in
    t.outputs <- line :: t.outputs

and call t name args (caller : Sema.checked_unit) : unit =
  let callee = Sema.find_unit_exn t.cp name in
  let u = callee.Sema.unit_ in
  let frame : frame = Hashtbl.create 16 in
  List.iter2
    (fun formal actual ->
      let binding =
        match actual with
        | Ast.Var v -> lookup t v
        | e -> Bscalar (ref (eval t caller.Sema.symtab e))
      in
      Hashtbl.replace frame formal binding)
    u.Ast.formals args;
  t.frames <- frame :: t.frames;
  allocate_locals t callee;
  (try List.iter (exec t callee) u.Ast.body with Return_signal -> ());
  t.frames <- List.tl t.frames

and allocate_locals t (cu : Sema.checked_unit) =
  let frame = current_frame t in
  List.iter
    (fun (name, info) ->
      if
        (not (Hashtbl.mem frame name))
        && not (Symtab.is_common cu.Sema.symtab name)
      then begin
        let layout = Layout.replicated info.Symtab.dims in
        let obj = Storage.alloc ~proc:0 ~nprocs:1 name info.Symtab.elt layout in
        Storage.mark_initial_validity obj;
        Hashtbl.replace frame name (Barray obj)
      end)
    (Symtab.arrays cu.Sema.symtab);
  Symtab.iter cu.Sema.symtab (fun name entry ->
      match entry with
      | Symtab.Scalar ty ->
        if
          (not (Hashtbl.mem frame name))
          && not (Symtab.is_common cu.Sema.symtab name)
        then Hashtbl.replace frame name (Bscalar (ref (Value.zero_of ty)))
      | _ -> ())

let run ?(config = Config.ipsc860 ~nprocs:1 ()) ?on_branch
    (cp : Sema.checked_program) : result =
  let t =
    { cp; config; globals = Hashtbl.create 8; frames = []; flops = 0; mem_ops = 0;
      outputs = []; on_branch }
  in
  let main = Sema.find_unit_exn cp cp.Sema.main in
  let frame : frame = Hashtbl.create 16 in
  t.frames <- [ frame ];
  (* COMMON storage: shared objects bound globally and in the main frame *)
  List.iter
    (fun (name, _block) ->
      match Symtab.find_exn main.Sema.symtab name with
      | Symtab.Array info ->
        let layout = Layout.replicated info.Symtab.dims in
        let obj = Storage.alloc ~proc:0 ~nprocs:1 name info.Symtab.elt layout in
        Storage.mark_initial_validity obj;
        Hashtbl.replace t.globals name (Barray obj);
        Hashtbl.replace frame name (Barray obj)
      | Symtab.Scalar ty ->
        let cell = Bscalar (ref (Value.zero_of ty)) in
        Hashtbl.replace t.globals name cell;
        Hashtbl.replace frame name cell
      | _ -> ())
    (Symtab.commons main.Sema.symtab);
  allocate_locals t main;
  (try List.iter (exec t main) main.Sema.unit_.Ast.body with Return_signal -> ());
  let arrays =
    Hashtbl.fold
      (fun name b acc -> match b with Barray o -> (name, o) :: acc | _ -> acc)
      frame []
    |> List.sort compare
  in
  { arrays;
    outputs = List.rev t.outputs;
    flops = t.flops;
    mem_ops = t.mem_ops;
    seq_time =
      (float_of_int t.flops *. config.Config.flop)
      +. (float_of_int t.mem_ops *. config.Config.mem_op) }
