(* Interpreter for SPMD node programs, one instance per logical processor.
   Performs {!Eff} effects for time, messages, collectives, and output;
   the {!Scheduler} coordinates the processor ensemble. *)

open Fd_support
open Fd_frontend

exception Return_signal

type binding =
  | Bscalar of Value.t ref
  | Barray of Storage.array_obj

type frame = (string, binding) Hashtbl.t

type t = {
  proc : int;
  config : Config.t;
  prog : Node.program;
  stats : Stats.t;
  globals : frame;  (* COMMON storage, visible in every procedure *)
  mutable frames : frame list;
  mutable pending : float;  (* accumulated compute cost not yet ticked *)
}

let create ~proc ~config ~stats prog =
  { proc; config; prog; stats; globals = Hashtbl.create 8; frames = [];
    pending = 0.0 }

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> Diag.error "interpreter has no active frame"

let cost_flop t =
  t.pending <- t.pending +. t.config.Config.flop;
  t.stats.Stats.flops <- t.stats.Stats.flops + 1

let cost_mem t =
  t.pending <- t.pending +. t.config.Config.mem_op;
  t.stats.Stats.mem_ops <- t.stats.Stats.mem_ops + 1

let flush_ticks t =
  if t.pending > 0.0 then begin
    Eff.tick t.pending;
    t.pending <- 0.0
  end

let cond_mentions_myp cond =
  let found = ref false in
  Ast.iter_exprs_expr
    (function Ast.Var "my$p" -> found := true | _ -> ())
    cond;
  !found

let implicit_zero name =
  if String.length name > 0 && name.[0] >= 'i' && name.[0] <= 'n' then Value.Vint 0
  else Value.Vreal 0.0

let lookup t name : binding =
  let frame = current_frame t in
  match Hashtbl.find_opt frame name with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt t.globals name with
    | Some b -> b
    | None ->
      (* implicitly typed scalar, created on demand (Fortran style) *)
      let b = Bscalar (ref (implicit_zero name)) in
      Hashtbl.replace frame name b;
      b)

let scalar_cell t name =
  match lookup t name with
  | Bscalar r -> r
  | Barray _ -> Diag.error "array %s used as a scalar" name

let array_obj t name =
  match lookup t name with
  | Barray o -> o
  | Bscalar _ -> Diag.error "scalar %s used as an array" name

(* --- Expression evaluation ------------------------------------------- *)

let rec eval t (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int_const n -> Value.Vint n
  | Ast.Real_const f -> Value.Vreal f
  | Ast.Logical_const b -> Value.Vbool b
  | Ast.Var v -> (
    match lookup t v with
    | Bscalar r -> !r
    | Barray _ -> Diag.error "whole array %s used as a value" v)
  | Ast.Ref (name, subs) ->
    let obj = array_obj t name in
    let idx = Array.of_list (List.map (fun s -> Value.to_int (eval t s)) subs) in
    cost_mem t;
    Storage.read ~strict:t.config.Config.strict_validity obj idx
  | Ast.Bin (op, a, b) -> (
    (* logical operators short-circuit; others strict *)
    match op with
    | Ast.And ->
      let va = Value.to_bool (eval t a) in
      cost_flop t;
      if not va then Value.Vbool false else Value.Vbool (Value.to_bool (eval t b))
    | Ast.Or ->
      let va = Value.to_bool (eval t a) in
      cost_flop t;
      if va then Value.Vbool true else Value.Vbool (Value.to_bool (eval t b))
    | _ ->
      let va = eval t a and vb = eval t b in
      cost_flop t;
      binop op va vb)
  | Ast.Un (Ast.Neg, a) ->
    cost_flop t;
    Value.sub (Value.Vint 0) (eval t a)
  | Ast.Un (Ast.Not, a) ->
    cost_flop t;
    Value.Vbool (not (Value.to_bool (eval t a)))
  | Ast.Funcall (name, args) -> intrinsic t name args

and binop op a b : Value.t =
  match op with
  | Ast.Add -> Value.add a b
  | Ast.Sub -> Value.sub a b
  | Ast.Mul -> Value.mul a b
  | Ast.Div -> Value.div a b
  | Ast.Pow -> Value.pow a b
  | Ast.Eq -> Value.Vbool (Value.equal a b)
  | Ast.Ne -> Value.Vbool (not (Value.equal a b))
  | Ast.Lt -> Value.Vbool (Value.compare_num a b < 0)
  | Ast.Le -> Value.Vbool (Value.compare_num a b <= 0)
  | Ast.Gt -> Value.Vbool (Value.compare_num a b > 0)
  | Ast.Ge -> Value.Vbool (Value.compare_num a b >= 0)
  | Ast.And | Ast.Or ->
    Diag.internal ~pass:"simulate" "boolean operator reached numeric evaluation"

and intrinsic t name args : Value.t =
  cost_flop t;
  let vals () = List.map (eval t) args in
  match (name, args) with
  | "myproc", [] -> Value.Vint t.proc
  | "nprocs", [] -> Value.Vint t.config.Config.nprocs
  | "tab$", sel :: consts ->
    (* compile-time table select: tab$(i, c0, c1, ...) = c_i *)
    let i = Value.to_int (eval t sel) in
    if i < 0 || i >= List.length consts then
      Diag.error "tab$ index %d out of range" i
    else eval t (List.nth consts i)
  | "owner$", Ast.Var arr :: subs ->
    (* run-time resolution: owner of an element under the array's current
       layout; replicated arrays are owned locally *)
    let obj = array_obj t arr in
    let layout = obj.Storage.layout in
    (match layout.Layout.dist_dim with
    | None -> Value.Vint t.proc
    | Some d ->
      let idx = Value.to_int (eval t (List.nth subs d)) in
      Value.Vint (Layout.owner_of layout ~nprocs:t.config.Config.nprocs idx))
  | "abs", [ a ] -> (
    match eval t a with
    | Value.Vint i -> Value.Vint (abs i)
    | Value.Vreal f -> Value.Vreal (Float.abs f)
    | Value.Vbool _ -> Diag.error "abs of logical")
  | "sqrt", [ a ] -> Value.Vreal (sqrt (Value.to_float (eval t a)))
  | "mod", [ a; b ] -> (
    match (eval t a, eval t b) with
    | Value.Vint x, Value.Vint y ->
      if y = 0 then Diag.error "mod by zero" else Value.Vint (x mod y)
    | x, y -> Value.Vreal (Float.rem (Value.to_float x) (Value.to_float y)))
  | "max", _ :: _ :: _ -> (
    match vals () with
    | v :: rest ->
      List.fold_left (fun acc x -> if Value.compare_num x acc > 0 then x else acc) v rest
    | [] -> Diag.internal ~pass:"simulate" "intrinsic %s with no arguments" name)
  | "min", _ :: _ :: _ -> (
    match vals () with
    | v :: rest ->
      List.fold_left (fun acc x -> if Value.compare_num x acc < 0 then x else acc) v rest
    | [] -> Diag.internal ~pass:"simulate" "intrinsic %s with no arguments" name)
  | "float", [ a ] -> Value.Vreal (Value.to_float (eval t a))
  | "int", [ a ] -> Value.Vint (Value.to_int (eval t a))
  | "sign", [ a; b ] -> (
    let m = Value.to_float (eval t a) and s = Value.to_float (eval t b) in
    let r = if s >= 0.0 then Float.abs m else -.Float.abs m in
    match eval t a with Value.Vint _ -> Value.Vint (int_of_float r) | _ -> Value.Vreal r)
  | _ ->
    Diag.error "unknown intrinsic %s/%d in node program" name (List.length args)

(* --- Sections --------------------------------------------------------- *)

let eval_section t (section : Node.section) : Fd_support.Triplet.t list =
  List.map
    (fun (lo, hi, step) ->
      let l = Value.to_int (eval t lo)
      and h = Value.to_int (eval t hi)
      and s = Value.to_int (eval t step) in
      if s < 1 then Diag.error "section step must be positive";
      Fd_support.Triplet.make ~lo:l ~hi:h ~step:s)
    section

let iter_section (triplets : Fd_support.Triplet.t list) (f : int array -> unit) =
  let dims = Array.of_list triplets in
  let r = Array.length dims in
  let idx = Array.make r 0 in
  let rec walk d =
    if d = r then f (Array.copy idx)
    else
      List.iter
        (fun x ->
          idx.(d) <- x;
          walk (d + 1))
        (Fd_support.Triplet.to_list dims.(d))
  in
  if not (Array.exists Fd_support.Triplet.is_empty dims) then walk 0

let read_section t obj triplets : (int array * Value.t) list =
  let out = ref [] in
  iter_section triplets (fun idx ->
      cost_mem t;
      out := (idx, Storage.read ~strict:t.config.Config.strict_validity obj idx) :: !out);
  List.rev !out

(* --- Statements ------------------------------------------------------- *)

let rec exec t (s : Node.nstmt) : unit =
  match s with
  | Node.N_assign (lhs, rhs) -> (
    let v = eval t rhs in
    match lhs with
    | Ast.Var name ->
      cost_mem t;
      let cell = scalar_cell t name in
      (* preserve declared integer-ness of the cell *)
      cell :=
        (match !cell with
        | Value.Vint _ -> Value.Vint (Value.to_int v)
        | Value.Vreal _ -> Value.Vreal (Value.to_float v)
        | Value.Vbool _ -> v)
    | Ast.Ref (name, subs) ->
      let obj = array_obj t name in
      let idx = Array.of_list (List.map (fun e -> Value.to_int (eval t e)) subs) in
      cost_mem t;
      let v =
        match obj.Storage.elt with
        | Ast.Real -> Value.Vreal (Value.to_float v)
        | Ast.Integer -> Value.Vint (Value.to_int v)
        | Ast.Logical -> v
      in
      Storage.write obj idx v
    | _ -> Diag.error "bad assignment target in node program")
  | Node.N_do { var; lo; hi; step; body } ->
    let l = Value.to_int (eval t lo) and h = Value.to_int (eval t hi) in
    let st = match step with None -> 1 | Some e -> Value.to_int (eval t e) in
    if st = 0 then Diag.error "zero DO step";
    let cell = scalar_cell t var in
    let continue_ x = if st > 0 then x <= h else x >= h in
    let x = ref l in
    while continue_ !x do
      cell := Value.Vint !x;
      cost_flop t;
      List.iter (exec t) body;
      x := !x + st
    done
  | Node.N_if { cond; then_; else_; _ } ->
    if Value.to_bool (eval t cond) then List.iter (exec t) then_
    else begin
      (* An owner guard is an [if] on the processor id ("my$p") with no
         else branch; a false guard is the visible footprint of the
         owner-computes rule, so it earns a trace event. *)
      (match t.config.Config.trace with
      | Some tr when else_ = [] && cond_mentions_myp cond ->
        Fd_trace.Trace.emit tr ~kind:Fd_trace.Trace.Guard_skip
          ~at:(t.stats.Stats.clocks.(t.proc) +. t.pending) ~proc:t.proc ()
      | _ -> ());
      List.iter (exec t) else_
    end
  | Node.N_call (name, args) -> call t name args
  | Node.N_send { dest; parts; tag; _ } ->
    let d = Value.to_int (eval t dest) in
    let elems =
      List.concat_map
        (fun (array, section) ->
          let obj = array_obj t array in
          let triplets = eval_section t section in
          List.map (fun (idx, v) -> (array, idx, v)) (read_section t obj triplets))
        parts
    in
    let bytes = List.length elems * t.config.Config.word_bytes in
    flush_ticks t;
    (* seq 0 is a placeholder: the scheduler's network layer stamps the
       real per-(src, dest, tag) sequence number *)
    Eff.send { Message.src = t.proc; dest = d; tag; seq = 0; elems; bytes }
  | Node.N_recv { src; tag; loc } ->
    let s = Value.to_int (eval t src) in
    flush_ticks t;
    let msg = Eff.recv ~src:s ~tag ~loc in
    List.iter
      (fun (array, idx, v) ->
        cost_mem t;
        Storage.receive (array_obj t array) idx v)
      msg.Message.elems
  | Node.N_bcast { root; payload; site; loc } -> (
    let r = Value.to_int (eval t root) in
    flush_ticks t;
    match payload with
    | Node.P_section (array, section) ->
      let obj = array_obj t array in
      let triplets = eval_section t section in
      let read () = read_section t obj triplets in
      let write elems =
        List.iter (fun (idx, v) -> Storage.receive obj idx v) elems
      in
      Eff.collective ~site ~loc
        (Eff.Coll_bcast { root = r; label = array; read; write })
    | Node.P_scalar name ->
      let cell = scalar_cell t name in
      let read () = [ ([||], !cell) ] in
      let write = function
        | [ (_, v) ] -> cell := v
        | _ -> Diag.error "scalar broadcast payload mismatch"
      in
      Eff.collective ~site ~loc
        (Eff.Coll_bcast { root = r; label = name; read; write }))
  | Node.N_remap { array; new_layout; move; site; loc } ->
    let obj = array_obj t array in
    flush_ticks t;
    Eff.collective ~site ~loc (Eff.Coll_remap { obj; new_layout; move })
  | Node.N_print args ->
    let line =
      String.concat " " (List.map (fun e -> Value.to_string (eval t e)) args)
    in
    flush_ticks t;
    Eff.output line
  | Node.N_return -> raise Return_signal

and call t name args : unit =
  let np =
    match Node.find_proc t.prog name with
    | Some np -> np
    | None -> Diag.error "call to unknown node procedure %s" name
  in
  if List.length args <> List.length np.Node.np_formals then
    Diag.error "node procedure %s arity mismatch" name;
  let frame : frame = Hashtbl.create 16 in
  (* Bind formals: whole arrays and scalar variables pass by reference;
     other expressions pass by value. *)
  List.iter2
    (fun formal actual ->
      let binding =
        match actual with
        | Ast.Var v -> lookup t v
        | e -> Bscalar (ref (eval t e))
      in
      Hashtbl.replace frame formal binding)
    np.Node.np_formals args;
  (* Allocate non-formal, non-COMMON local arrays and declared scalars. *)
  let is_common name =
    Hashtbl.mem t.globals name
  in
  List.iter
    (fun (ad : Node.array_decl) ->
      if (not (List.mem ad.Node.ad_name np.Node.np_formals))
         && not (is_common ad.Node.ad_name)
      then begin
        let obj =
          Storage.alloc ~proc:t.proc ~nprocs:t.config.Config.nprocs ad.Node.ad_name
            ad.Node.ad_elt ad.Node.ad_layout
        in
        Storage.mark_initial_validity obj;
        Hashtbl.replace frame ad.Node.ad_name (Barray obj)
      end)
    np.Node.np_arrays;
  List.iter
    (fun (v, ty) ->
      if
        (not (List.mem v np.Node.np_formals))
        && (not (Hashtbl.mem frame v))
        && not (is_common v)
      then Hashtbl.replace frame v (Bscalar (ref (Value.zero_of ty))))
    np.Node.np_scalars;
  t.frames <- frame :: t.frames;
  (try List.iter (exec t) np.Node.np_body with Return_signal -> ());
  t.frames <- List.tl t.frames

(* Run this processor's copy of the main node program; returns the main
   frame so the driver can gather final array contents. *)
let run_main t : frame =
  let main =
    match Node.find_proc t.prog t.prog.Node.n_main with
    | Some np -> np
    | None ->
      (* codegen guarantees a main node procedure; its absence is a
         compiler bug, not an input error *)
      Diag.internal ~pass:"simulate" "node program has no main %s"
        t.prog.Node.n_main
  in
  let frame : frame = Hashtbl.create 16 in
  (* COMMON storage: allocated once, bound both globally (visible from
     every procedure) and in the main frame (visible to gather) *)
  List.iter
    (fun (ad : Node.array_decl) ->
      let obj =
        Storage.alloc ~proc:t.proc ~nprocs:t.config.Config.nprocs ad.Node.ad_name
          ad.Node.ad_elt ad.Node.ad_layout
      in
      Storage.mark_initial_validity obj;
      Hashtbl.replace t.globals ad.Node.ad_name (Barray obj);
      Hashtbl.replace frame ad.Node.ad_name (Barray obj))
    t.prog.Node.n_common_arrays;
  List.iter
    (fun (v, ty) ->
      let cell = Bscalar (ref (Value.zero_of ty)) in
      Hashtbl.replace t.globals v cell;
      Hashtbl.replace frame v cell)
    t.prog.Node.n_common_scalars;
  List.iter
    (fun (ad : Node.array_decl) ->
      if Hashtbl.mem t.globals ad.Node.ad_name then ()
      else begin
        let obj =
          Storage.alloc ~proc:t.proc ~nprocs:t.config.Config.nprocs ad.Node.ad_name
            ad.Node.ad_elt ad.Node.ad_layout
        in
        Storage.mark_initial_validity obj;
        Hashtbl.replace frame ad.Node.ad_name (Barray obj)
      end)
    main.Node.np_arrays;
  List.iter
    (fun (v, ty) ->
      if not (Hashtbl.mem t.globals v) then
        Hashtbl.replace frame v (Bscalar (ref (Value.zero_of ty))))
    main.Node.np_scalars;
  t.frames <- [ frame ];
  (try List.iter (exec t) main.Node.np_body with Return_signal -> ());
  flush_ticks t;
  frame
