(* Typed section messages exchanged by node programs. *)

type t = {
  src : int;
  dest : int;
  tag : int;            (* static communication-site id *)
  seq : int;
      (* monotone per-(src, dest, tag) sequence number, stamped by the
         scheduler's network layer; receivers dedup and reassemble in
         seq order.  Senders construct messages with seq = 0. *)
  elems : (string * int array * Value.t) list;
      (* (array, global index vector, value); one message may aggregate
         sections of several arrays (paper Fig. 11 aggregation) *)
  bytes : int;
}

let nelems m = List.length m.elems

let arrays m =
  List.sort_uniq compare (List.map (fun (a, _, _) -> a) m.elems)

let pp ppf m =
  Fmt.pf ppf "msg %d->%d tag %d seq %d %s (%d elems, %d bytes)" m.src m.dest
    m.tag m.seq
    (String.concat "+" (arrays m))
    (nelems m) m.bytes
