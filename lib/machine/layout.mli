(** Data layouts: how one array dimension is partitioned across the P
    logical processors.  At most one dimension is distributed (a 1-D
    logical processor arrangement; see DESIGN.md). *)

open Fd_support

type dist1 =
  | Block of int         (** block size *)
  | Cyclic
  | Block_cyclic of int
  | Replicated

type t = {
  bounds : (int * int) list;  (** declared global bounds per dimension *)
  dist_dim : int option;      (** 0-based distributed dimension *)
  dist : dist1;
}

val replicated : (int * int) list -> t
val rank : t -> int
val extent : int * int -> int
val dim_bounds : t -> int -> int * int

val block_size_for : nprocs:int -> int * int -> int
(** Default block size: ceil(extent / P). *)

val owned : t -> nprocs:int -> Iset.t array
(** Per-processor owned global indices in the distributed dimension (the
    full extent everywhere when replicated).  The sets partition the
    extent (property-tested). *)

val owned_one : t -> nprocs:int -> int -> Iset.t
(** One processor's owned set: [owned_one t ~nprocs p = (owned t ~nprocs).(p)]
    without the O(P) array. *)

val owner_of : t -> nprocs:int -> int -> int
(** Owner of a global index in the distributed dimension. *)

val is_replicated : t -> bool
val equal : t -> t -> bool
val dist_name : dist1 -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
