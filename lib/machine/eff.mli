(** Effects performed by node-program interpreters and handled by the
    scheduler.  Each logical processor runs as a delimited computation;
    communication suspends it until the scheduler can satisfy the
    request. *)

open Fd_support

type coll_op =
  | Coll_bcast of {
      root : int;
      label : string;
      read : unit -> (int array * Value.t) list;
          (** payload extraction; meaningful on the root *)
      write : (int array * Value.t) list -> unit;
          (** payload installation into this processor's memory *)
    }
  | Coll_remap of {
      obj : Storage.array_obj;  (** this processor's copy of the array *)
      new_layout : Layout.t;
      move : bool;  (** physical data movement vs mark-only *)
    }

type _ Effect.t +=
  | Tick : float -> unit Effect.t
  | Send : Message.t -> unit Effect.t
  | Recv : (int * int * Loc.t) -> Message.t Effect.t  (** src, tag, source loc *)
  | Collective : (int * coll_op * Loc.t) -> unit Effect.t  (** site, op, source loc *)
  | Output : string -> unit Effect.t

val tick : float -> unit
val send : Message.t -> unit
val recv : src:int -> tag:int -> loc:Loc.t -> Message.t
val collective : site:int -> loc:Loc.t -> coll_op -> unit
val output : string -> unit
