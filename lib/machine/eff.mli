(** Effects performed by node-program interpreters and handled by the
    scheduler.  Each logical processor runs as a delimited computation;
    communication suspends it until the scheduler can satisfy the
    request. *)

open Fd_support

type remap_summary = {
  rs_array : string;
  rs_total_bytes : int;
  rs_sent : int array;       (** per-processor bytes sent *)
  rs_received : int array;   (** per-processor bytes received *)
  rs_npairs : int array;     (** per-processor partner-pair count *)
  rs_pairs : ((int * int) * int) list;  (** sorted ((src, dest), bytes) *)
  rs_mark_only : bool;
}
(** Everything the scheduler's remap accounting consumes, captured once
    so the parallel scheduler's replay phase can re-price a remap
    without re-planning the (already performed) data movement. *)

type coll_op =
  | Coll_bcast of {
      root : int;
      label : string;
      read : unit -> (int array * Value.t) list;
          (** payload extraction; meaningful on the root *)
      write : (int array * Value.t) list -> unit;
          (** payload installation into this processor's memory *)
    }
  | Coll_remap of {
      obj : Storage.array_obj;  (** this processor's copy of the array *)
      new_layout : Layout.t;
      move : bool;  (** physical data movement vs mark-only *)
    }
  | Coll_replay_remap of {
      label : string;  (** array name, for diagnostics before completion *)
      summary : (remap_summary, exn) result option ref;
          (** filled when the generation phase performed the remap;
              [Error] poisons the site with generation's exception *)
    }

type _ Effect.t +=
  | Tick : float -> unit Effect.t
  | Send : Message.t -> unit Effect.t
  | Recv : (int * int * Loc.t) -> Message.t Effect.t  (** src, tag, source loc *)
  | Collective : (int * coll_op * Loc.t) -> unit Effect.t  (** site, op, source loc *)
  | Output : string -> unit Effect.t

val tick : float -> unit
val send : Message.t -> unit
val recv : src:int -> tag:int -> loc:Loc.t -> Message.t
val collective : site:int -> loc:Loc.t -> coll_op -> unit
val output : string -> unit
