(** Deterministic, seed-driven fault plans for the simulated network.

    A plan describes an adversarial network: per-message drop
    probability (recovered by the scheduler's ack/retransmit protocol),
    duplication, bounded arrival-delay jitter, reordering pressure, and
    per-processor compute slowdown.  Every decision is derived by a
    splitmix64-style hash of [(seed, src, dest, tag, seq)] — no wall
    clock, no mutable generator state — so the same seed yields the same
    fault schedule regardless of event-processing order, and a run's
    {!Stats} are exactly reproducible. *)

type t = {
  seed : int;            (** fault-schedule seed *)
  drop : float;          (** per-transmission-attempt drop probability, [0,1] *)
  dup : float;           (** per-message duplication probability, [0,1] *)
  delay : float;         (** max extra arrival jitter, seconds (uniform) *)
  reorder : float;       (** probability a message is queued behind its
                             successor (one extra message-cost of delay) *)
  slowdown : (int * float) list;
      (** per-processor compute slowdown factors (proc, factor >= 1) *)
  rto : float;           (** initial retransmit timeout, virtual seconds *)
  backoff : float;       (** timeout multiplier per retry (exponential) *)
  max_retries : int;     (** retransmissions before the message is declared
                             lost and the run fails with a structured error *)
  watchdog : float option;
      (** virtual-time limit: any processor clock exceeding it aborts the
          run with {!Scheduler.Watchdog} (livelock -> diagnosable timeout) *)
  tags : int list option;   (** restrict faults to these tags (None = all) *)
  srcs : int list option;   (** restrict faults to these senders *)
  dests : int list option;  (** restrict faults to these receivers *)
}

val make :
  ?drop:float -> ?dup:float -> ?delay:float -> ?reorder:float ->
  ?slowdown:(int * float) list -> ?rto:float -> ?backoff:float ->
  ?max_retries:int -> ?watchdog:float -> ?tags:int list ->
  ?srcs:int list -> ?dests:int list -> seed:int -> unit -> t
(** Defaults: all intensities 0, [rto] = 500us, [backoff] = 2,
    [max_retries] = 8, no watchdog, no tag/src/dest restriction. *)

val selects : t -> src:int -> dest:int -> tag:int -> bool
(** Is a message on this (src, dest, tag) subject to the plan's faults? *)

val slowdown_for : t -> int -> float
(** Compute slowdown factor for a processor (1.0 when unlisted). *)

type delivery = {
  attempts : int;     (** transmission attempts consumed (>= 1) *)
  lost : bool;        (** every attempt dropped: message never arrives *)
  added_delay : float;
      (** extra arrival latency (retransmit timeouts + jitter + reorder
          penalty), seconds; 0 when [lost] *)
  duplicated : bool;  (** a second copy reaches the receiver *)
  injected : int;     (** fault events this delivery represents *)
}

val deliver :
  t -> msg_cost:float -> src:int -> dest:int -> tag:int -> seq:int -> delivery
(** The (deterministic) fate of one message under the plan's
    ack/retransmit protocol.  Attempt [i] is retransmitted after a
    timeout of [rto * backoff^(i-1)] virtual seconds; [msg_cost] prices
    the reorder penalty. *)

val pp : Format.formatter -> t -> unit
