(** Virtual-time scheduler for the processor ensemble.

    Each logical processor runs as a delimited computation (OCaml 5
    effect handlers).  A processor runs until it finishes or blocks on a
    receive / collective; sends are asynchronous (infinite buffering, the
    iPSC model) with arrival time [sender_clock + alpha + beta*bytes]; a
    blocking receive advances the receiver to [max(own, arrival)].
    Collectives synchronize all P processors at a site.  Scheduling is
    deterministic.

    Resilient protocol: the network layer stamps every message with a
    monotone per-(src, dest, tag) sequence number.  Under a {!Fault}
    plan, dropped transmissions are recovered by an ack/retransmit loop
    with virtual-time timeouts and exponential backoff (the latency is
    charged to the arrival time), duplicates are deduped on the sequence
    number, and receivers reassemble in seq order.  A message still
    undeliverable after [max_retries] retransmissions terminates the run
    with a structured {!Deadlock} carrying the wait-for graph — never an
    infinite loop. *)

open Fd_support

type blocked_on =
  | On_recv of { src : int; tag : int; loc : Loc.t }
      (** [loc] is the Fortran D source statement whose communication the
          processor is blocked on ({!Loc.none} when synthesized) *)
  | On_collective of { site : int; label : string; loc : Loc.t }

type waiter = { w_proc : int; w_on : blocked_on; w_clock : float }
(** One blocked processor: what it waits on and its virtual time. *)

type lost_msg = { l_src : int; l_dest : int; l_tag : int; l_seq : int;
                  l_attempts : int }
(** A message declared undeliverable after exhausting retransmissions. *)

type wait_for = {
  waiting : waiter list;   (** every blocked processor, sorted by id *)
  cycle : int list;        (** processors forming a wait cycle, if any *)
  lost : lost_msg list;    (** permanently lost messages, in send order *)
}

type error =
  | Deadlock of wait_for
      (** blocked processors at quiescence, including mismatched
          collective sites and receives starved by lost messages *)
  | Watchdog of { proc : int; clock : float; limit : float }
      (** a processor exceeded the fault plan's virtual-time limit *)
  | Invalid_read of { proc : int; array : string; index : int array;
                      clock : float }
      (** strict-validity violation: a read of a non-owned,
          never-received element — missing communication *)
  | Runtime_error of string

exception Sim_error of error

val error_to_string : error -> string

val run : Config.t -> Node.program -> Stats.t * Interp.frame array
(** Simulate to completion.
    @raise Sim_error on deadlock (including mismatched collective sites
    and unrecoverable message loss), watchdog expiry, or runtime faults
    (including strict-validity violations). *)

type partial = {
  p_stats : Stats.t;  (** statistics accumulated so far *)
  p_frames : Interp.frame array option;
      (** final per-processor frames; [None] when the budget tripped
          before every processor finished *)
  p_exhausted : string option;  (** the budget-exhaustion reason, if any *)
}

val run_partial : ?budget:Budget.t -> Config.t -> Node.program -> partial
(** Like {!run}, but under an optional resource {!Budget.t}: when a step,
    event, or wall cap trips, the simulation stops gracefully and
    returns the statistics accumulated so far with [p_exhausted] set —
    a partial result, never an exception. *)
