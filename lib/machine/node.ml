(* The SPMD node-program IR produced by the Fortran D compiler back ends
   and executed by the simulator.

   Expressions reuse {!Fd_frontend.Ast.expr}; on top of the sequential
   statement forms the IR adds explicit message passing (guarded
   send/recv of array sections, broadcast) and dynamic remapping.  All
   index expressions are in *global* index space; each array carries a
   {!Layout.t} mapping indices to owners (see DESIGN.md section 6). *)

open Fd_support
open Fd_frontend

(* Per-dimension (lo, hi, step) in global index space; expressions may
   reference my$p, loop variables, and node-program scalars. *)
type section = (Ast.expr * Ast.expr * Ast.expr) list

type payload =
  | P_section of string * section
  | P_scalar of string

type nstmt =
  | N_assign of Ast.expr * Ast.expr
  | N_do of { var : string; lo : Ast.expr; hi : Ast.expr; step : Ast.expr option;
              body : nstmt list }
  | N_if of { cond : Ast.expr; then_ : nstmt list; else_ : nstmt list;
              loc : Loc.t }
  | N_call of string * Ast.expr list
  | N_send of { dest : Ast.expr; parts : (string * section) list; tag : int;
                loc : Loc.t }
  | N_recv of { src : Ast.expr; tag : int; loc : Loc.t }
  | N_bcast of { root : Ast.expr; payload : payload; site : int; loc : Loc.t }
  | N_remap of { array : string; new_layout : Layout.t; move : bool; site : int;
                 loc : Loc.t }
  | N_print of Ast.expr list
  | N_return

type array_decl = {
  ad_name : string;
  ad_elt : Ast.dtype;
  ad_layout : Layout.t;  (* initial layout *)
}

type nproc = {
  np_name : string;
  np_formals : string list;
  np_arrays : array_decl list;   (* declared arrays (formals and locals) *)
  np_scalars : (string * Ast.dtype) list;  (* declared scalars *)
  np_body : nstmt list;
}

type program = {
  n_procs : nproc list;
  n_main : string;
  n_nprocs : int;  (* the P the program was compiled for *)
  n_common_arrays : array_decl list;        (* COMMON storage, shared *)
  n_common_scalars : (string * Ast.dtype) list;
}

let find_proc prog name =
  List.find_opt (fun p -> String.equal p.np_name name) prog.n_procs

let find_array np name =
  List.find_opt (fun a -> String.equal a.ad_name name) np.np_arrays

(* --- Pretty printer (paper Figure 2 style) --------------------------- *)

let pp_section ppf (s : section) =
  let pp_dim ppf (lo, hi, step) =
    match step with
    | Ast.Int_const 1 ->
      Fmt.pf ppf "%a:%a" Ast_printer.pp_expr lo Ast_printer.pp_expr hi
    | _ ->
      Fmt.pf ppf "%a:%a:%a" Ast_printer.pp_expr lo Ast_printer.pp_expr hi
        Ast_printer.pp_expr step
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any ",") pp_dim) s

let rec pp_nstmt indent ppf (s : nstmt) =
  let pad = String.make indent ' ' in
  match s with
  | N_assign (lhs, rhs) ->
    Fmt.pf ppf "%s%a = %a@." pad Ast_printer.pp_expr lhs Ast_printer.pp_expr rhs
  | N_do { var; lo; hi; step; body } ->
    (match step with
    | None ->
      Fmt.pf ppf "%sdo %s = %a, %a@." pad var Ast_printer.pp_expr lo
        Ast_printer.pp_expr hi
    | Some st ->
      Fmt.pf ppf "%sdo %s = %a, %a, %a@." pad var Ast_printer.pp_expr lo
        Ast_printer.pp_expr hi Ast_printer.pp_expr st);
    List.iter (pp_nstmt (indent + 2) ppf) body;
    Fmt.pf ppf "%senddo@." pad
  | N_if { cond; then_; else_; _ } ->
    Fmt.pf ppf "%sif (%a) then@." pad Ast_printer.pp_expr cond;
    List.iter (pp_nstmt (indent + 2) ppf) then_;
    if else_ <> [] then begin
      Fmt.pf ppf "%selse@." pad;
      List.iter (pp_nstmt (indent + 2) ppf) else_
    end;
    Fmt.pf ppf "%sendif@." pad
  | N_call (name, args) ->
    Fmt.pf ppf "%scall %s(%a)@." pad name
      Fmt.(list ~sep:(any ", ") Ast_printer.pp_expr)
      args
  | N_send { dest; parts; tag; _ } ->
    let pp_part ppf (array, section) =
      Fmt.pf ppf "%s(%a)" array pp_section section
    in
    Fmt.pf ppf "%ssend %a to %a  {tag %d}@." pad
      Fmt.(list ~sep:(any ", ") pp_part)
      parts Ast_printer.pp_expr dest tag
  | N_recv { src; tag; _ } ->
    Fmt.pf ppf "%srecv from %a  {tag %d}@." pad Ast_printer.pp_expr src tag
  | N_bcast { root; payload; site; _ } -> (
    match payload with
    | P_section (a, s) ->
      Fmt.pf ppf "%sbroadcast %s(%a) from %a  {site %d}@." pad a pp_section s
        Ast_printer.pp_expr root site
    | P_scalar v ->
      Fmt.pf ppf "%sbroadcast %s from %a  {site %d}@." pad v Ast_printer.pp_expr
        root site)
  | N_remap { array; new_layout; move; site; _ } ->
    Fmt.pf ppf "%sremap %s to %a%s  {site %d}@." pad array Layout.pp new_layout
      (if move then "" else " (mark only)")
      site
  | N_print args ->
    Fmt.pf ppf "%sprint *, %a@." pad
      Fmt.(list ~sep:(any ", ") Ast_printer.pp_expr)
      args
  | N_return -> Fmt.pf ppf "%sreturn@." pad

let pp_nproc ppf np =
  if np.np_formals = [] then Fmt.pf ppf "node program %s@." np.np_name
  else Fmt.pf ppf "node subroutine %s(%s)@." np.np_name (String.concat ", " np.np_formals);
  List.iter
    (fun a ->
      Fmt.pf ppf "  %s %s(%s)  ! %a@."
        (Ast_printer.dtype_name a.ad_elt)
        a.ad_name
        (String.concat ", "
           (List.map (fun (lo, hi) -> Fmt.str "%d:%d" lo hi) a.ad_layout.Layout.bounds))
        Layout.pp a.ad_layout)
    np.np_arrays;
  List.iter
    (fun (v, ty) -> Fmt.pf ppf "  %s %s@." (Ast_printer.dtype_name ty) v)
    np.np_scalars;
  List.iter (pp_nstmt 2 ppf) np.np_body;
  Fmt.pf ppf "end@."

let pp_program ppf prog =
  Fmt.pf ppf "! SPMD node program for P = %d@.@." prog.n_nprocs;
  if prog.n_common_arrays <> [] || prog.n_common_scalars <> [] then begin
    Fmt.pf ppf "! common storage:@.";
    List.iter
      (fun a ->
        Fmt.pf ppf "!   %s %s  (%a)@."
          (Ast_printer.dtype_name a.ad_elt)
          a.ad_name Layout.pp a.ad_layout)
      prog.n_common_arrays;
    List.iter
      (fun (v, ty) -> Fmt.pf ppf "!   %s %s@." (Ast_printer.dtype_name ty) v)
      prog.n_common_scalars;
    Fmt.pf ppf "@."
  end;
  Fmt.(list ~sep:(any "@.") pp_nproc) ppf prog.n_procs

let program_to_string prog = Fmt.str "%a" pp_program prog

(* Map a function over every expression in a statement tree (used by the
   code generator to fold PARAMETER constants into node programs). *)
let rec map_exprs (f : Ast.expr -> Ast.expr) (s : nstmt) : nstmt =
  let fsec = List.map (fun (lo, hi, st) -> (f lo, f hi, f st)) in
  match s with
  | N_assign (lhs, rhs) -> N_assign (f lhs, f rhs)
  | N_do { var; lo; hi; step; body } ->
    N_do { var; lo = f lo; hi = f hi; step = Option.map f step;
           body = List.map (map_exprs f) body }
  | N_if { cond; then_; else_; loc } ->
    N_if { cond = f cond; then_ = List.map (map_exprs f) then_;
           else_ = List.map (map_exprs f) else_; loc }
  | N_call (name, args) -> N_call (name, List.map f args)
  | N_send { dest; parts; tag; loc } ->
    N_send
      { dest = f dest; parts = List.map (fun (a, sec) -> (a, fsec sec)) parts;
        tag; loc }
  | N_recv _ as r -> r
  | N_bcast { root; payload; site; loc } ->
    let payload =
      match payload with
      | P_section (a, sec) -> P_section (a, fsec sec)
      | P_scalar _ as p -> p
    in
    N_bcast { root = f root; payload; site; loc }
  | N_remap _ as r -> r
  | N_print args -> N_print (List.map f args)
  | N_return -> N_return
